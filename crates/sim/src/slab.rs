//! The flit slab: one contiguous allocation of fixed-depth inline VC rings.
//!
//! ROADMAP item 1 moved the pipeline's *control* state into flat
//! structure-of-arrays tables; this module does the same for the *data*:
//! instead of each input VC owning a heap-allocated `VecDeque<Flit>` (~20k
//! scattered ring buffers at the 1024-node scale), the whole network's
//! buffer capacity lives in a single `[node][port][vc][slot]` slab with a
//! parallel POD `RingMeta { head, len }` array, so buffer writes, VA peeks,
//! SA/ST dequeues, fault sweeps and occupancy audits walk flat memory
//! (DESIGN.md §17).
//!
//! Ownership model: [`FlitSlab`] owns the backing store and carves it into
//! disjoint [`SlabRegion`] views, one per node, handed out through
//! [`NodeModel::attach_flit_slab`]. A region is the *exclusive* owner of
//! its rings — all mutation goes through `&mut SlabRegion` — while the
//! store itself is kept alive by reference counting. This is the same
//! aliasing discipline the parallel node-stepping phase already relies on
//! (`StepJob` in `crate::network`): workers mutate disjoint node ranges,
//! and each node only ever touches its own region.
//!
//! Ring invariants (checked by debug assertions):
//! * `head < depth` and `len <= depth` at all times;
//! * occupied slots are `(head + k) % depth` for `k in 0..len`, in FIFO
//!   order;
//! * vacated slots keep stale flit bytes — they are never read, never
//!   serialised, and never own a [`ConfigArena`](crate::arena::ConfigArena)
//!   reference (the pop/retain paths move or free payload handles before
//!   the slot is vacated).
//!
//! [`NodeModel::attach_flit_slab`]: crate::node::NodeModel::attach_flit_slab

use std::cell::UnsafeCell;
use std::sync::Arc;

use crate::flit::{Flit, Packet, PacketId, Switching};
use crate::geometry::NodeId;
use crate::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};

/// Head/len of one ring, packed so the whole metadata table of a node
/// (20 rings at the default 5-port × 4-VC geometry) spans a cache line.
#[derive(Clone, Copy, Debug, Default)]
#[repr(C)]
pub struct RingMeta {
    /// Slot index of the FIFO front; `< depth` always.
    pub head: u8,
    /// Occupied slots; `<= depth` always.
    pub len: u8,
}

const _: () = assert!(
    std::mem::size_of::<RingMeta>() == 2,
    "RingMeta must stay a 2-byte POD row (DESIGN.md §17)"
);

/// The shared backing store. `UnsafeCell` because disjoint regions of the
/// same store are mutated through `&mut SlabRegion` handles that only hold
/// an `Arc` to it; the region carve discipline (see [`FlitSlab::carve`])
/// guarantees no two handles overlap.
struct SlabStore {
    flits: Box<[UnsafeCell<Flit>]>,
    meta: Box<[UnsafeCell<RingMeta>]>,
    depth: usize,
}

// Safety: every ring of the store is owned by exactly one `SlabRegion`
// (enforced by `FlitSlab::carve` handing out non-overlapping ranges), and a
// region requires `&mut` for mutation. Concurrent access from the parallel
// stepping phase therefore touches disjoint cells only.
unsafe impl Send for SlabStore {}
unsafe impl Sync for SlabStore {}

/// A filler value for vacant slots. Never observable: reads are bounded by
/// `len`, serialisation walks FIFO order only.
fn filler_flit() -> Flit {
    let p = Packet::data(PacketId(0), NodeId(0), NodeId(0), 1, 0);
    Flit::of_packet(&p, 0, Switching::Packet)
}

fn new_store(rings: usize, depth: usize) -> Arc<SlabStore> {
    assert!(
        depth >= 1 && depth <= u8::MAX as usize,
        "ring depth {depth} out of range"
    );
    assert!(
        rings <= u32::MAX as usize,
        "ring count {rings} out of range"
    );
    let f = filler_flit();
    Arc::new(SlabStore {
        flits: (0..rings * depth).map(|_| UnsafeCell::new(f)).collect(),
        meta: (0..rings)
            .map(|_| UnsafeCell::new(RingMeta::default()))
            .collect(),
        depth,
    })
}

/// The network-owned slab: a contiguous store plus a carve cursor that
/// hands out disjoint per-node [`SlabRegion`]s.
pub struct FlitSlab {
    store: Arc<SlabStore>,
    next_ring: usize,
}

impl FlitSlab {
    /// Allocate a slab of `rings` rings, each `depth` slots deep.
    pub fn new(rings: usize, depth: u8) -> Self {
        FlitSlab {
            store: new_store(rings, depth as usize),
            next_ring: 0,
        }
    }

    pub fn depth(&self) -> u8 {
        self.store.depth as u8
    }

    /// Carve the next `rings` rings into an exclusive region. Panics when
    /// the slab capacity is exceeded — region disjointness is enforced
    /// here, by construction.
    pub fn carve(&mut self, rings: usize) -> SlabRegion {
        let first = self.next_ring;
        assert!(
            first + rings <= self.store.meta.len(),
            "flit slab over-carved: {} + {} rings of {}",
            first,
            rings,
            self.store.meta.len()
        );
        self.next_ring = first + rings;
        SlabRegion::over(self.store.clone(), first, rings)
    }
}

/// An exclusive view of a contiguous run of rings inside a [`FlitSlab`]
/// (or a private single-node store, for standalone pipelines). All reads
/// go through `&self`, all mutation through `&mut self`; the store-level
/// aliasing argument lives on [`SlabStore`].
pub struct SlabRegion {
    store: Arc<SlabStore>,
    /// Base pointers of this region's slice of the store, hoisted out of
    /// the `Arc` so the per-flit hot path is a single indexed load.
    flits: *mut Flit,
    meta: *mut RingMeta,
    rings: usize,
    depth: usize,
}

// Safety: a region exclusively owns its rings (see `SlabStore`); the raw
// base pointers target memory kept alive by the `store` Arc.
unsafe impl Send for SlabRegion {}

impl std::fmt::Debug for SlabRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlabRegion")
            .field("rings", &self.rings)
            .field("depth", &self.depth)
            .field(
                "occupancy",
                &(0..self.rings).map(|r| self.len(r)).sum::<usize>(),
            )
            .finish()
    }
}

impl Clone for SlabRegion {
    /// Deep copy into a fresh private store: a cloned pipeline must not
    /// alias the original's rings. Clones detach from any network-owned
    /// slab — acceptable, since cloning is a construction-time/test
    /// affair, never part of the stepping hot path.
    fn clone(&self) -> Self {
        let out = SlabRegion::private(self.rings, self.depth as u8);
        for r in 0..self.rings {
            let m = self.meta(r);
            unsafe { *out.meta.add(r) = m };
            for s in 0..self.depth {
                unsafe { *out.flits.add(r * self.depth + s) = *self.flits.add(r * self.depth + s) };
            }
        }
        out
    }
}

impl SlabRegion {
    fn over(store: Arc<SlabStore>, first: usize, rings: usize) -> Self {
        let depth = store.depth;
        let flits = store.flits[first * depth..].as_ptr() as *mut Flit;
        let meta = store.meta[first..].as_ptr() as *mut RingMeta;
        SlabRegion {
            store,
            flits,
            meta,
            rings,
            depth,
        }
    }

    /// A region over its own private store — what standalone pipelines
    /// (unit rigs, single-router tests) use before/without a network slab.
    pub fn private(rings: usize, depth: u8) -> Self {
        let store = new_store(rings, depth as usize);
        SlabRegion::over(store, 0, rings)
    }

    #[inline]
    pub fn rings(&self) -> usize {
        self.rings
    }

    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    #[inline]
    fn meta(&self, ring: usize) -> RingMeta {
        debug_assert!(ring < self.rings);
        unsafe { *self.meta.add(ring) }
    }

    #[inline]
    fn set_meta(&mut self, ring: usize, m: RingMeta) {
        debug_assert!(ring < self.rings);
        debug_assert!((m.head as usize) < self.depth && m.len as usize <= self.depth);
        unsafe { *self.meta.add(ring) = m };
    }

    /// Slot index of FIFO position `pos` of `ring`.
    #[inline]
    fn slot(&self, ring: usize, head: u8, pos: usize) -> usize {
        let mut s = head as usize + pos;
        if s >= self.depth {
            s -= self.depth;
        }
        ring * self.depth + s
    }

    #[inline]
    pub fn len(&self, ring: usize) -> usize {
        self.meta(ring).len as usize
    }

    #[inline]
    pub fn is_empty(&self, ring: usize) -> bool {
        self.meta(ring).len == 0
    }

    #[inline]
    pub fn front(&self, ring: usize) -> Option<&Flit> {
        let m = self.meta(ring);
        if m.len == 0 {
            return None;
        }
        Some(unsafe { &*self.flits.add(self.slot(ring, m.head, 0)) })
    }

    #[inline]
    pub fn front_mut(&mut self, ring: usize) -> Option<&mut Flit> {
        let m = self.meta(ring);
        if m.len == 0 {
            return None;
        }
        let i = self.slot(ring, m.head, 0);
        Some(unsafe { &mut *self.flits.add(i) })
    }

    /// FIFO position `pos` (0 = front).
    #[inline]
    pub fn get(&self, ring: usize, pos: usize) -> &Flit {
        let m = self.meta(ring);
        assert!(pos < m.len as usize, "ring position out of bounds");
        unsafe { &*self.flits.add(self.slot(ring, m.head, pos)) }
    }

    /// Append to the ring tail. Panics on overflow — the credit protocol
    /// bounds occupancy at `depth`, so an overflow is a flow-control bug.
    #[inline]
    pub fn push_back(&mut self, ring: usize, flit: Flit) {
        let m = self.meta(ring);
        assert!((m.len as usize) < self.depth, "ring overflow");
        let i = self.slot(ring, m.head, m.len as usize);
        unsafe { *self.flits.add(i) = flit };
        self.set_meta(
            ring,
            RingMeta {
                head: m.head,
                len: m.len + 1,
            },
        );
    }

    #[inline]
    pub fn pop_front(&mut self, ring: usize) -> Option<Flit> {
        let m = self.meta(ring);
        if m.len == 0 {
            return None;
        }
        let f = unsafe { *self.flits.add(self.slot(ring, m.head, 0)) };
        let mut head = m.head + 1;
        if head as usize == self.depth {
            head = 0;
        }
        self.set_meta(
            ring,
            RingMeta {
                head,
                len: m.len - 1,
            },
        );
        Some(f)
    }

    /// Iterate `ring` in FIFO order.
    pub fn iter(&self, ring: usize) -> impl Iterator<Item = &Flit> + '_ {
        let m = self.meta(ring);
        (0..m.len as usize)
            .map(move |pos| unsafe { &*self.flits.add(self.slot(ring, m.head, pos)) })
    }

    /// Keep only the flits for which `keep` returns true, preserving FIFO
    /// order (the fault-sweep primitive). Returns the number removed.
    pub fn retain(&mut self, ring: usize, mut keep: impl FnMut(&Flit) -> bool) -> usize {
        let m = self.meta(ring);
        let mut kept = 0u8;
        for pos in 0..m.len as usize {
            let src = self.slot(ring, m.head, pos);
            let f = unsafe { *self.flits.add(src) };
            if keep(&f) {
                let dst = self.slot(ring, m.head, kept as usize);
                if dst != src {
                    unsafe { *self.flits.add(dst) = f };
                }
                kept += 1;
            }
        }
        self.set_meta(
            ring,
            RingMeta {
                head: m.head,
                len: kept,
            },
        );
        (m.len - kept) as usize
    }

    /// Serialise `ring` in FIFO order: `u64` length then the flits. This is
    /// byte-identical to the `VecDeque<Flit>` encoding the per-VC buffers
    /// used before the slab, so `NOCSNAP`/`NOCCKPT` blobs are unchanged
    /// (DESIGN.md §17).
    pub fn save_ring(&self, ring: usize, w: &mut SnapshotWriter) {
        let m = self.meta(ring);
        w.usize(m.len as usize);
        for pos in 0..m.len as usize {
            unsafe { &*self.flits.add(self.slot(ring, m.head, pos)) }.save(w);
        }
    }

    /// Inverse of [`SlabRegion::save_ring`]; the restored ring is
    /// normalised to `head = 0` (head position is not observable through
    /// the FIFO API and is not part of the snapshot encoding).
    pub fn load_ring(&mut self, ring: usize, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let len = r.seq_len()?;
        if len > self.depth {
            return Err(SnapshotError::Corrupt("ring deeper than buffer depth"));
        }
        for pos in 0..len {
            let f = Flit::load(r)?;
            unsafe { *self.flits.add(ring * self.depth + pos) = f };
        }
        self.set_meta(
            ring,
            RingMeta {
                head: 0,
                len: len as u8,
            },
        );
        Ok(())
    }

    /// Whether this region shares `slab`'s backing store (drain audits).
    pub fn backed_by(&self, slab: &FlitSlab) -> bool {
        Arc::ptr_eq(&self.store, &slab.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotWriter;

    fn flit(seq: u8, of: u8) -> Flit {
        let p = Packet::data(PacketId(9), NodeId(1), NodeId(2), of, 3);
        Flit::of_packet(&p, seq, Switching::Packet)
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let mut r = SlabRegion::private(2, 3);
        // Fill, half-drain, refill: the ring must wrap and stay FIFO.
        for seq in 0..3 {
            r.push_back(1, flit(seq, 8));
        }
        assert_eq!(r.pop_front(1).unwrap().seq, 0);
        assert_eq!(r.pop_front(1).unwrap().seq, 1);
        r.push_back(1, flit(3, 8));
        r.push_back(1, flit(4, 8));
        assert_eq!(r.len(1), 3);
        let seqs: Vec<u8> = r.iter(1).map(|f| f.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(r.front(1).unwrap().seq, 2);
        // Ring 0 untouched throughout.
        assert!(r.is_empty(0) && r.pop_front(0).is_none());
    }

    #[test]
    #[should_panic(expected = "ring overflow")]
    fn overflow_panics() {
        let mut r = SlabRegion::private(1, 2);
        for seq in 0..3 {
            r.push_back(0, flit(seq, 8));
        }
    }

    #[test]
    fn retain_preserves_order_across_wrap() {
        let mut r = SlabRegion::private(1, 4);
        for seq in 0..4 {
            r.push_back(0, flit(seq, 8));
        }
        r.pop_front(0);
        r.pop_front(0);
        r.push_back(0, flit(4, 8)); // physically wraps
        r.push_back(0, flit(5, 8));
        let removed = r.retain(0, |f| f.seq % 2 == 0);
        assert_eq!(removed, 2);
        let seqs: Vec<u8> = r.iter(0).map(|f| f.seq).collect();
        assert_eq!(seqs, vec![2, 4]);
    }

    #[test]
    fn ring_snapshot_matches_vecdeque_encoding() {
        // The slab encoding must be byte-identical to the former
        // `VecDeque<Flit>` one, including for physically wrapped rings.
        let mut r = SlabRegion::private(1, 3);
        for seq in 0..3 {
            r.push_back(0, flit(seq, 8));
        }
        r.pop_front(0);
        r.push_back(0, flit(3, 8)); // wrapped
        let mut w = SnapshotWriter::new();
        r.save_ring(0, &mut w);
        let mut dq = std::collections::VecDeque::new();
        for seq in 1..4 {
            dq.push_back(flit(seq, 8));
        }
        let mut w2 = SnapshotWriter::new();
        dq.save(&mut w2);
        assert_eq!(w.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn ring_snapshot_roundtrip() {
        let mut r = SlabRegion::private(1, 5);
        for seq in 0..4 {
            r.push_back(0, flit(seq, 8));
        }
        r.pop_front(0); // head != 0
        let mut w = SnapshotWriter::new();
        r.save_ring(0, &mut w);
        let bytes = w.into_bytes();
        let mut fresh = SlabRegion::private(1, 5);
        let mut rd = SnapshotReader::new(&bytes);
        fresh.load_ring(0, &mut rd).unwrap();
        let a: Vec<u8> = r.iter(0).map(|f| f.seq).collect();
        let b: Vec<u8> = fresh.iter(0).map(|f| f.seq).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn load_rejects_overdeep_ring() {
        let mut src = SlabRegion::private(1, 4);
        for seq in 0..4 {
            src.push_back(0, flit(seq, 8));
        }
        let mut w = SnapshotWriter::new();
        src.save_ring(0, &mut w);
        let bytes = w.into_bytes();
        let mut shallow = SlabRegion::private(1, 3);
        let mut rd = SnapshotReader::new(&bytes);
        assert!(shallow.load_ring(0, &mut rd).is_err());
    }

    #[test]
    fn carve_hands_out_disjoint_regions() {
        let mut slab = FlitSlab::new(6, 4);
        let mut a = slab.carve(2);
        let mut b = slab.carve(4);
        a.push_back(1, flit(0, 8));
        b.push_back(0, flit(1, 8));
        assert_eq!(a.len(1), 1);
        assert_eq!(b.len(0), 1);
        assert_eq!(b.front(0).unwrap().seq, 1);
        assert!(a.backed_by(&slab) && b.backed_by(&slab));
    }

    #[test]
    #[should_panic(expected = "over-carved")]
    fn overcarve_panics() {
        let mut slab = FlitSlab::new(3, 4);
        slab.carve(2);
        slab.carve(2);
    }

    #[test]
    fn clone_detaches() {
        let mut a = SlabRegion::private(1, 3);
        a.push_back(0, flit(0, 8));
        let mut c = a.clone();
        c.push_back(0, flit(1, 8));
        assert_eq!(a.len(0), 1);
        assert_eq!(c.len(0), 2);
        assert_eq!(c.get(0, 1).seq, 1);
    }
}
