//! The snapshot seam: a versioned, deterministic byte encoding of all
//! mutable simulation state, plus the fault-injection vocabulary that
//! rides on it.
//!
//! # Codec
//!
//! Serialisation is a hand-rolled little-endian byte stream (the vendored
//! `serde` stand-in is serialise-only, so JSON round-tripping is not an
//! option). The rules are deliberately boring:
//!
//! * fixed-width integers are written little-endian, `usize` as `u64`;
//! * `f64` is written as its IEEE-754 bit pattern (`to_bits`);
//! * `bool` is one byte (0/1, anything else is corruption);
//! * sequences (`Vec`, `VecDeque`, `Box<[T]>`) are a `u64` length followed
//!   by the elements; arrays write elements only (the length is in the
//!   type);
//! * `Option<T>` is a presence byte then the payload;
//! * enums write a `u8` discriminant chosen by their manual impl.
//!
//! Nothing is self-describing: reader and writer must agree on the exact
//! field order, which is why every struct's encoding lives next to its
//! definition (the [`impl_snap!`] macro names the fields once) and why the
//! container format carries an explicit version. **Any change to a
//! snapshotted type's fields or field order must bump
//! [`SNAPSHOT_VERSION`]** — old snapshots are then rejected instead of
//! being misdecoded.
//!
//! # What is serialized vs reconstructed
//!
//! Configuration (mesh shape, router config, TDM/SDM config) is *not* in
//! the snapshot: a snapshot is restored into a freshly built fabric of the
//! same configuration, and [`crate::network::Network::restore`] verifies
//! the shape matches. Derived caches with cheap, provably-deterministic
//! reconstructions could be recomputed, but this format serialises them
//! verbatim instead (occupancy caches, power caches, in-flight counters):
//! the bytes are small and a verbatim copy cannot disagree with the state
//! it was derived from.

use std::collections::VecDeque;
use std::fmt;

use crate::geometry::Direction;
use crate::Cycle;

/// Version tag embedded in every [`FabricSnapshot`]. Bump on any change
/// to any snapshotted type's encoding.
///
/// v2: `TdmNode` gained the circuit-plan `pinned` table.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Magic prefix of the container format.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"NOCSNAP\x01";

/// Why a snapshot could not be produced or consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The backend (or a node model) does not implement the seam.
    Unsupported(&'static str),
    /// The byte stream ended early.
    Eof,
    /// The byte stream decoded to something impossible.
    Corrupt(&'static str),
    /// The container header carried an unknown version.
    Version(u32),
    /// The snapshot does not match the fabric it is being restored into.
    Mismatch(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Unsupported(what) => {
                write!(f, "snapshot unsupported: {what}")
            }
            SnapshotError::Eof => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::Version(v) => {
                write!(f, "snapshot version {v} (expected {SNAPSHOT_VERSION})")
            }
            SnapshotError::Mismatch(what) => {
                write!(f, "snapshot does not match this fabric: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Append-only encoder for the snapshot byte stream.
#[derive(Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    #[inline]
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    #[inline]
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    #[inline]
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
}

/// Cursor-based decoder over a snapshot byte stream.
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        SnapshotReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt("usize overflow"))
    }

    /// A `usize` that will be used as an allocation size: bounded against
    /// the remaining input so corrupt lengths cannot OOM the process.
    pub fn seq_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapshotError::Corrupt("sequence length exceeds input"));
        }
        Ok(n)
    }

    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool out of range")),
        }
    }
}

/// A type with a deterministic snapshot encoding.
pub trait Snap: Sized {
    fn save(&self, w: &mut SnapshotWriter);
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError>;
}

macro_rules! snap_prim {
    ($($t:ty => $put:ident),* $(,)?) => {$(
        impl Snap for $t {
            #[inline]
            fn save(&self, w: &mut SnapshotWriter) {
                w.$put(*self);
            }
            #[inline]
            fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
                r.$put()
            }
        }
    )*};
}

snap_prim!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, f64 => f64, bool => bool);

impl Snap for i64 {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(*self as u64);
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        Ok(r.u64()? as i64)
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            _ => Err(SnapshotError::Corrupt("Option tag")),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        let n = r.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        let n = r.seq_len()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for Box<[T]> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.len());
        for v in self.iter() {
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        Ok(Vec::<T>::load(r)?.into_boxed_slice())
    }
}

impl<T: Snap + Default + Copy, const N: usize> Snap for [T; N] {
    fn save(&self, w: &mut SnapshotWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        let mut out = [T::default(); N];
        for slot in out.iter_mut() {
            *slot = T::load(r)?;
        }
        Ok(out)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn save(&self, w: &mut SnapshotWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn save(&self, w: &mut SnapshotWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

/// Implement [`Snap`] for a struct by listing its fields once, in
/// encoding order. Must be invoked in (or under) the module that owns the
/// struct so private fields resolve.
#[macro_export]
macro_rules! impl_snap {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::snapshot::Snap for $ty {
            fn save(&self, w: &mut $crate::snapshot::SnapshotWriter) {
                $($crate::snapshot::Snap::save(&self.$field, w);)*
            }
            fn load(
                r: &mut $crate::snapshot::SnapshotReader,
            ) -> Result<Self, $crate::snapshot::SnapshotError> {
                $(let $field = $crate::snapshot::Snap::load(r)?;)*
                Ok(Self { $($field),* })
            }
        }
    };
}

/// An opaque, versioned snapshot of one fabric's mutable state.
///
/// Layout: [`SNAPSHOT_MAGIC`] (8 bytes) · [`SNAPSHOT_VERSION`] (u32 LE) ·
/// payload. The payload encoding is owned by the backend that produced
/// it; a snapshot is only meaningful to a fabric built from the same
/// configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FabricSnapshot {
    bytes: Vec<u8>,
}

impl FabricSnapshot {
    /// Wrap a backend payload in the container header.
    pub fn from_payload(payload: Vec<u8>) -> Self {
        let mut bytes = Vec::with_capacity(payload.len() + 12);
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&payload);
        FabricSnapshot { bytes }
    }

    /// The full container (header + payload), e.g. for writing to disk.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Validate the header of `bytes` and wrap it.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        if bytes.len() < 12 {
            return Err(SnapshotError::Eof);
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Corrupt("bad magic"));
        }
        let ver = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if ver != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version(ver));
        }
        Ok(FabricSnapshot { bytes })
    }

    /// A reader positioned at the start of the backend payload.
    pub fn payload(&self) -> SnapshotReader<'_> {
        SnapshotReader::new(&self.bytes[12..])
    }
}

/// One scheduled change to a link's health, in simulation time.
///
/// A fault names the *directed* link leaving `node` towards `dir`; the
/// harness applies it to both directions of the physical link (the
/// reverse direction from the neighbouring router goes down with it), so
/// scenarios do not have to list each cable twice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the change takes effect (applied before that
    /// cycle's node stepping).
    pub at: Cycle,
    /// Router owning the outgoing side of the link.
    pub node: u32,
    /// Which of its links.
    pub dir: Direction,
    /// `false` = kill, `true` = revive.
    pub up: bool,
}

impl Snap for FaultEvent {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.at);
        w.u32(self.node);
        w.u8(self.dir as u8);
        w.bool(self.up);
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        let at = r.u64()?;
        let node = r.u32()?;
        let d = r.u8()? as usize;
        if d >= Direction::ALL.len() {
            return Err(SnapshotError::Corrupt("direction out of range"));
        }
        let dir = Direction::from_index(d);
        let up = r.bool()?;
        Ok(FaultEvent { at, node, dir, up })
    }
}

/// A dense per-(node, destination) next-hop override table, rebuilt by
/// BFS over the live links whenever the fault set changes. `None` when no
/// link is down, so the fault-free path pays nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteOverrides {
    nodes: u32,
    /// `next[node * nodes + dst]`: direction index (0..4), or
    /// [`RouteOverrides::NO_ROUTE`] when `dst` is unreachable from
    /// `node` (the flit is then left to the default route and dropped at
    /// the dead link).
    next: Box<[u8]>,
}

impl RouteOverrides {
    pub const NO_ROUTE: u8 = u8::MAX;

    pub fn new(nodes: u32, next: Box<[u8]>) -> Self {
        assert_eq!(next.len(), (nodes as usize).pow(2));
        RouteOverrides { nodes, next }
    }

    /// Next hop from `node` towards `dst`, if one exists over live links.
    #[inline]
    pub fn dir(&self, node: u32, dst: u32) -> Option<Direction> {
        let idx = node as usize * self.nodes as usize + dst as usize;
        let v = self.next[idx];
        if v == Self::NO_ROUTE || node == dst {
            None
        } else {
            Some(Direction::from_index(v as usize))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapshotWriter::new();
        0xdeadbeefu32.save(&mut w);
        true.save(&mut w);
        (-1.5f64).save(&mut w);
        Some(7u64).save(&mut w);
        Option::<u64>::None.save(&mut w);
        vec![1u16, 2, 3].save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(u32::load(&mut r).unwrap(), 0xdeadbeef);
        assert!(bool::load(&mut r).unwrap());
        assert_eq!(f64::load(&mut r).unwrap(), -1.5);
        assert_eq!(Option::<u64>::load(&mut r).unwrap(), Some(7));
        assert_eq!(Option::<u64>::load(&mut r).unwrap(), None);
        assert_eq!(Vec::<u16>::load(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
        assert_eq!(u8::load(&mut r), Err(SnapshotError::Eof));
    }

    #[test]
    fn container_header_is_validated() {
        let snap = FabricSnapshot::from_payload(vec![1, 2, 3]);
        let bytes = snap.as_bytes().to_vec();
        let back = FabricSnapshot::from_bytes(bytes.clone()).unwrap();
        let mut r = back.payload();
        assert_eq!(r.u8().unwrap(), 1);

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            FabricSnapshot::from_bytes(wrong_magic),
            Err(SnapshotError::Corrupt(_))
        ));

        let mut wrong_ver = bytes;
        wrong_ver[8] = 0xfe;
        assert!(matches!(
            FabricSnapshot::from_bytes(wrong_ver),
            Err(SnapshotError::Version(_))
        ));
        assert!(matches!(
            FabricSnapshot::from_bytes(vec![]),
            Err(SnapshotError::Eof)
        ));
    }

    #[test]
    fn corrupt_sequence_length_is_rejected_not_allocated() {
        let mut w = SnapshotWriter::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            Vec::<u8>::load(&mut r),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn route_overrides_lookup() {
        // 2x1 "mesh": node 0 east of nothing; hand-build the table.
        let mut next = vec![RouteOverrides::NO_ROUTE; 4].into_boxed_slice();
        next[1] = Direction::East as u8; // 0 -> 1 via East
        next[2] = Direction::West as u8; // 1 -> 0 via West
        let ov = RouteOverrides::new(2, next);
        assert_eq!(ov.dir(0, 1), Some(Direction::East));
        assert_eq!(ov.dir(1, 0), Some(Direction::West));
        assert_eq!(ov.dir(0, 0), None);
    }
}
