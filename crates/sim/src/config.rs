//! Router and network configuration (Table I of the paper).

use crate::topology::Mesh;
use serde::{Deserialize, Serialize};

/// Parameters of a single router (Table I).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Virtual channels per input port (Table I: 4).
    pub vcs_per_port: u8,
    /// Buffer depth per VC, in flits (Table I: 5).
    pub buf_depth: u8,
    /// Channel (flit) width in bytes (Table I: 16).
    pub channel_bytes: u16,
    /// Use minimal-adaptive routing for configuration packets (Table I);
    /// data packets always use deterministic X-Y routing.
    pub adaptive_config_routing: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            vcs_per_port: 4,
            buf_depth: 5,
            channel_bytes: 16,
            adaptive_config_routing: true,
        }
    }
}

impl RouterConfig {
    /// Total buffer capacity of one input port, in flits.
    pub fn port_buffer_flits(&self) -> u32 {
        self.vcs_per_port as u32 * self.buf_depth as u32
    }
}

/// Parameters of the whole network.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    pub mesh: Mesh,
    pub router: RouterConfig,
    /// Packet length for packet-switched data packets, in flits
    /// (Table I: 5 — a 64 B line in 16 B flits plus the header flit).
    pub ps_packet_flits: u8,
    /// Packet length for circuit-switched data packets (Table I: 4 — no
    /// header needed on a reserved path).
    pub cs_packet_flits: u8,
    /// Worker threads for the node-stepping phase of `Network::step`
    /// (0 = serial). Purely a host-side performance knob: results are
    /// bit-identical for every value (see the determinism contract in
    /// `network.rs`).
    pub step_threads: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            mesh: Mesh::square(6),
            router: RouterConfig::default(),
            ps_packet_flits: 5,
            cs_packet_flits: 4,
            step_threads: 0,
        }
    }
}

impl NetworkConfig {
    pub fn with_mesh(mesh: Mesh) -> Self {
        NetworkConfig {
            mesh,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = NetworkConfig::default();
        assert_eq!(c.mesh.len(), 36);
        assert_eq!(c.router.vcs_per_port, 4);
        assert_eq!(c.router.buf_depth, 5);
        assert_eq!(c.router.channel_bytes, 16);
        assert_eq!(c.ps_packet_flits, 5);
        assert_eq!(c.cs_packet_flits, 4);
        assert_eq!(c.router.port_buffer_flits(), 20);
    }
}
