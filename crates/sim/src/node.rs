//! The node abstraction: one tile = NIC + router, pluggable into the
//! [`crate::network::Network`] harness.

use noc_telemetry::{EventKind, RingSink, TraceSink};

use crate::config::NetworkConfig;
use crate::flit::{ConfigKind, Credit, Flit, MsgClass, Packet, PacketId, Switching};
use crate::geometry::{Direction, NodeId, Port};
use crate::nic::Nic;
use crate::router::{GatingConfig, PacketRouter, VcGatingController};
use crate::snapshot::{RouteOverrides, Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use crate::stats::EnergyEvents;
use crate::Cycle;

/// Everything a node emits in one cycle, collected by the harness and
/// delivered to neighbours with wire latency (flits: 2 cycles — switch then
/// link; credits and VC-count advertisements: 1 cycle).
#[derive(Debug, Default)]
pub struct NodeOutputs {
    pub flits: Vec<(Direction, Flit)>,
    pub credits: Vec<(Direction, Credit)>,
    /// Active-VC-count advertisements (VC power gating).
    pub vc_counts: Vec<(Direction, u8)>,
}

impl NodeOutputs {
    pub fn clear(&mut self) {
        self.flits.clear();
        self.credits.clear();
        self.vc_counts.clear();
    }
}

/// Per-cycle powered-component snapshot, integrated by the harness into
/// leakage state (see `noc-power`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PowerState {
    /// Powered-on input-buffer flit slots.
    pub buffer_slots: u32,
    /// Powered-on slot-table entries (hybrid routers).
    pub slot_entries: u32,
    /// Powered-on DLT entries (hitchhiker-sharing).
    pub dlt_entries: u32,
}

/// What kind of packet completed: ordinary data, or one of the three
/// path-configuration message types (§II-B). Finer-grained than
/// [`MsgClass`], so per-class latency accounting can separate setup
/// round-trips from teardowns and acks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeliveredKind {
    #[default]
    Data,
    Setup,
    Teardown,
    Ack,
}

impl DeliveredKind {
    /// Classify a delivered flit by its configuration payload (configuration
    /// packets are single-flit, so the payload is always present on the
    /// completing flit).
    pub fn of_config(config: Option<ConfigKind>) -> DeliveredKind {
        match config {
            None => DeliveredKind::Data,
            Some(ConfigKind::Setup(_)) => DeliveredKind::Setup,
            Some(ConfigKind::Teardown(_)) => DeliveredKind::Teardown,
            Some(ConfigKind::Ack { .. }) => DeliveredKind::Ack,
        }
    }
}

/// Summary of a packet that completed delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveredPacket {
    pub id: PacketId,
    pub src: NodeId,
    pub dst: NodeId,
    pub class: MsgClass,
    /// Data vs the specific configuration message type.
    pub kind: DeliveredKind,
    /// How the packet actually traversed the network.
    pub switching: Switching,
    pub len_flits: u8,
    pub created: Cycle,
    pub delivered: Cycle,
    pub measured: bool,
}

impl Snap for DeliveredKind {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(match self {
            DeliveredKind::Data => 0,
            DeliveredKind::Setup => 1,
            DeliveredKind::Teardown => 2,
            DeliveredKind::Ack => 3,
        });
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => DeliveredKind::Data,
            1 => DeliveredKind::Setup,
            2 => DeliveredKind::Teardown,
            3 => DeliveredKind::Ack,
            _ => return Err(SnapshotError::Corrupt("delivered kind")),
        })
    }
}

crate::impl_snap!(DeliveredPacket {
    id,
    src,
    dst,
    class,
    kind,
    switching,
    len_flits,
    created,
    delivered,
    measured
});

crate::impl_snap!(PowerState {
    buffer_slots,
    slot_entries,
    dlt_entries
});

/// A tile model pluggable into the network harness. Implemented by
/// [`PacketNode`] here, the TDM hybrid node in `tdm-noc`, and the SDM node
/// in `noc-sdm`.
pub trait NodeModel {
    fn id(&self) -> NodeId;
    /// Queue a packet at this node's NIC.
    fn inject(&mut self, now: Cycle, pkt: Packet);
    /// A flit arrives from the neighbour in `from` (i.e. on input port
    /// `from.as_port()`).
    fn accept_flit(&mut self, now: Cycle, from: Direction, flit: Flit);
    fn accept_credit(&mut self, now: Cycle, from: Direction, credit: Credit);
    fn accept_vc_count(&mut self, _now: Cycle, _from: Direction, _count: u8) {}
    /// Advance one cycle.
    fn step(&mut self, now: Cycle, out: &mut NodeOutputs);
    /// Hand over packets that finished delivery.
    fn drain_delivered(&mut self, sink: &mut Vec<DeliveredPacket>);
    /// Cumulative event counters.
    fn events(&self) -> EnergyEvents;
    /// Flits currently owned by the node (drain detection).
    fn occupancy(&self) -> usize;
    /// Current powered components (leakage integration).
    fn power_state(&self) -> PowerState;

    /// Activity hint consulted by the harness after each stepped cycle
    /// (`now` = the cycle just executed).
    ///
    /// - `None`: the node has work; keep stepping it every cycle.
    /// - `Some(t)` with `t > now`: the node is quiescent — every future
    ///   `step` would be a state-identical no-op until an external signal
    ///   (flit/credit/VC-count delivery, injection) arrives or cycle `t` is
    ///   reached, whichever comes first. `Cycle::MAX` means "no internal
    ///   deadline at all".
    ///
    /// The default keeps the node always active, so custom node models are
    /// unaffected by the activity scheduler. Implementations must be
    /// conservative: claiming quiescence while holding deferred work breaks
    /// the sleep/wake-vs-always-step bit-identity contract.
    fn sleep_until(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    /// Adopt the network-wide configuration-payload arena. The harness
    /// calls this once at construction so every node serialises and
    /// resolves [`ConfigRef`](crate::arena::ConfigRef) handles against the
    /// same slab. Nodes start with a private arena, so standalone use
    /// (unit tests, single-node rigs) works without a harness.
    fn attach_arena(&mut self, _arena: &std::sync::Arc<crate::arena::ConfigArena>) {}

    /// Flit-buffer demand on the network-owned flit slab, as
    /// `(rings, depth)` — one fixed-depth ring per input VC (DESIGN.md
    /// §17). `None` (the default) opts out: the node keeps whatever
    /// private buffering it was constructed with, so custom test models
    /// are unaffected.
    fn flit_slab_rings(&self) -> Option<(usize, u8)> {
        None
    }

    /// Adopt an exclusive carve of the network-owned flit slab. Called
    /// once at construction, before any flit is buffered, with a region of
    /// exactly the geometry advertised by [`NodeModel::flit_slab_rings`].
    fn attach_flit_slab(&mut self, _region: crate::slab::SlabRegion) {}

    /// Install a telemetry sink (the harness builds one per node when a
    /// trace is armed). The default drops it, so uninstrumented node
    /// models keep compiling and simply record nothing.
    fn set_trace_sink(&mut self, _sink: TraceSink) {}

    /// Surrender the node's recorded telemetry ring, leaving the sink
    /// disabled. `None` for uninstrumented models or untraced runs.
    fn take_trace(&mut self) -> Option<Box<RingSink>> {
        None
    }

    /// Serialise every bit of mutable node state into `w` (the snapshot
    /// seam, see `DESIGN.md` §14). Models that do not opt in return
    /// [`SnapshotError::Unsupported`], which the harness surfaces as a
    /// checkpoint failure rather than silently writing a partial snapshot.
    fn save_state(&self, _w: &mut SnapshotWriter) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(
            "node model does not implement snapshots",
        ))
    }

    /// Inverse of [`NodeModel::save_state`], applied to a freshly
    /// constructed node of the same configuration.
    fn load_state(&mut self, _r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(
            "node model does not implement snapshots",
        ))
    }

    /// Install (or clear) the fault-reroute table. While overrides are
    /// installed, the routing unit must consult them before its normal
    /// route computation so packet-switched traffic detours around dead
    /// links. The default ignores them: models without rerouting support
    /// simply keep routing minimally (the scenario layer refuses fault
    /// schedules on such backends).
    fn set_route_overrides(&mut self, _overrides: Option<std::sync::Arc<RouteOverrides>>) {}

    /// Purge all state belonging to packet `pid` after the network dropped
    /// one of its flits on a faulted link: queued flits, per-VC buffer
    /// occupancy, partial reassembly. Buffer slots freed at inter-router
    /// input ports are refunded by pushing credits into `credits` (the
    /// harness delivers them upstream over the credit wires), and interned
    /// configuration payloads are released into `arena`. Returns the
    /// number of flits discarded at this node so the harness can keep its
    /// occupancy cache and drop accounting exact. The default (no state to
    /// purge) suits stateless test probes.
    fn abort_packet(
        &mut self,
        _pid: PacketId,
        _arena: &crate::arena::ConfigArena,
        _credits: &mut Vec<(Direction, Credit)>,
    ) -> usize {
        0
    }
}

/// The baseline tile: canonical packet-switched router + NIC, with optional
/// VC power gating (the paper's packet+gating comparison point in §V-B4).
pub struct PacketNode {
    nic: Nic,
    pub router: PacketRouter,
    gating: Option<VcGatingController>,
}

impl PacketNode {
    pub fn new(id: NodeId, cfg: &NetworkConfig, gating: Option<GatingConfig>) -> Self {
        let mut nic = Nic::new(id, &cfg.router);
        if cfg.mesh.is_torus() {
            assert!(
                gating.is_none(),
                "VC gating is incompatible with torus dateline classes"
            );
            nic.set_inject_vc_limit(cfg.router.vcs_per_port / 2);
        }
        PacketNode {
            nic,
            router: PacketRouter::new(id, cfg.mesh, cfg.router),
            gating: gating.map(VcGatingController::new),
        }
    }

    pub fn nic(&self) -> &Nic {
        &self.nic
    }
}

impl NodeModel for PacketNode {
    fn id(&self) -> NodeId {
        self.nic.id()
    }

    fn inject(&mut self, _now: Cycle, pkt: Packet) {
        self.nic.enqueue(pkt);
    }

    fn accept_flit(&mut self, now: Cycle, from: Direction, flit: Flit) {
        self.router.accept_flit(now, from.as_port(), flit);
    }

    fn accept_credit(&mut self, _now: Cycle, from: Direction, credit: Credit) {
        self.router.accept_credit(from, credit);
    }

    fn accept_vc_count(&mut self, _now: Cycle, from: Direction, count: u8) {
        self.router.pipeline.accept_vc_count(from, count);
    }

    fn step(&mut self, now: Cycle, out: &mut NodeOutputs) {
        // Credits freed by the router's local port last cycle.
        for vc in self.router.pipeline.local_credits.drain(..) {
            self.nic.credit(vc);
        }
        // Inject at most one flit per cycle into the local port.
        if let Some(f) = self.nic.next_flit(now) {
            self.router.accept_flit(now, Port::Local, f);
        }
        self.router.step(now, out);
        for f in self.router.pipeline.ejected.drain(..) {
            self.nic.accept_ejected(now, f);
        }
        if let Some(g) = &mut self.gating {
            if let Some(n) = g.on_cycle(now, &mut self.router.pipeline) {
                self.nic.set_router_active_vcs(n);
                let id = self.nic.id().0;
                self.router.pipeline.trace.record(
                    now,
                    id,
                    EventKind::GatingTransition,
                    Port::Local.index() as u8,
                    n as u64,
                );
                for d in Direction::ALL {
                    if self.router.pipeline.out_exists(d.as_port()) {
                        out.vc_counts.push((d, n));
                    }
                }
            }
        }
    }

    fn drain_delivered(&mut self, sink: &mut Vec<DeliveredPacket>) {
        let start = sink.len();
        self.nic.drain_delivered(sink);
        if let Some(g) = &mut self.gating {
            // Feed the latency-based gating metric (§V-B4).
            for d in &sink[start..] {
                if d.class == MsgClass::Data {
                    g.record_latency(d.delivered.saturating_sub(d.created));
                }
            }
        }
    }

    fn events(&self) -> EnergyEvents {
        self.router.pipeline.events
    }

    fn occupancy(&self) -> usize {
        self.router.pipeline.occupancy() + self.nic.occupancy()
    }

    fn power_state(&self) -> PowerState {
        PowerState {
            buffer_slots: self.router.pipeline.powered_buffer_slots(),
            slot_entries: 0,
            dlt_entries: 0,
        }
    }

    fn sleep_until(&self, _now: Cycle) -> Option<Cycle> {
        // Flits anywhere in the tile, or credits owed to the NIC next
        // cycle, mean the next step does real work. A VC stalled mid-packet
        // with an empty FIFO is fine to sleep through: the missing flits
        // are upstream and their arrival wakes this node.
        if self.occupancy() != 0 || !self.router.pipeline.local_credits.is_empty() {
            return None;
        }
        match &self.gating {
            // The gating controller evaluates (and may advertise a new VC
            // count) at epoch boundaries even on an idle node.
            Some(g) => Some(g.next_eval()),
            None => Some(Cycle::MAX),
        }
    }

    fn attach_arena(&mut self, arena: &std::sync::Arc<crate::arena::ConfigArena>) {
        self.nic.set_arena(arena.clone());
    }

    fn flit_slab_rings(&self) -> Option<(usize, u8)> {
        Some((
            self.router.pipeline.slab_rings(),
            self.router.pipeline.cfg.buf_depth,
        ))
    }

    fn attach_flit_slab(&mut self, region: crate::slab::SlabRegion) {
        self.router.pipeline.attach_slab(region);
    }

    fn set_trace_sink(&mut self, sink: TraceSink) {
        self.router.pipeline.trace = sink;
    }

    fn take_trace(&mut self) -> Option<Box<RingSink>> {
        self.router.pipeline.trace.take()
    }

    fn save_state(&self, w: &mut SnapshotWriter) -> Result<(), SnapshotError> {
        self.nic.save_state(w);
        self.router.pipeline.save_state(w);
        if let Some(g) = &self.gating {
            g.save_state(w);
        }
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        self.nic.load_state(r)?;
        self.router.pipeline.load_state(r)?;
        if let Some(g) = &mut self.gating {
            g.load_state(r)?;
        }
        Ok(())
    }

    fn set_route_overrides(&mut self, overrides: Option<std::sync::Arc<RouteOverrides>>) {
        self.router.pipeline.set_route_overrides(overrides);
    }

    fn abort_packet(
        &mut self,
        pid: PacketId,
        arena: &crate::arena::ConfigArena,
        credits: &mut Vec<(Direction, Credit)>,
    ) -> usize {
        self.nic.abort_packet(pid) + self.router.pipeline.purge_packet(pid, arena, credits)
    }
}
