//! Statistics: energy event counters and network-level measurement.

use crate::flit::{MsgClass, Switching};
use crate::impl_snap;
use crate::node::{DeliveredKind, DeliveredPacket};
use crate::Cycle;
use serde::{Deserialize, Serialize, Value};

/// Per-node event counters.
///
/// Dynamic-energy events are accumulated by routers/NICs and later priced by
/// the `noc-power` model; protocol counters feed the paper's traffic
/// statistics (Table III, §II-B's "configuration messages are <1 % of
/// traffic", time-slot steal counts, …).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyEvents {
    // --- dynamic energy events -------------------------------------------
    /// Flit written into an input-buffer VC FIFO.
    pub buffer_writes: u64,
    /// Flit read out of an input-buffer VC FIFO at switch traversal.
    pub buffer_reads: u64,
    /// Flit through the crossbar (packet- or circuit-switched).
    pub xbar_traversals: u64,
    /// VC-allocation arbitration operations.
    pub va_ops: u64,
    /// Switch-allocation arbitration operations.
    pub sa_ops: u64,
    /// Flit traversals of an inter-router link.
    pub link_flits: u64,
    /// Slot-table lookups (one per flit arrival at a hybrid router input).
    pub slot_lookups: u64,
    /// Slot-table entry writes (setup reservations, teardown invalidations,
    /// capacity-doubling resets).
    pub slot_updates: u64,
    /// Circuit-switched flits latched into the CS bypass latch.
    pub cs_latch_writes: u64,
    /// Destination-lookup-table (hitchhiker-sharing) lookups.
    pub dlt_lookups: u64,
    /// DLT entry writes.
    pub dlt_updates: u64,

    // --- protocol / traffic counters --------------------------------------
    /// Packet-switched flits ejected at their destination.
    pub ps_flits_delivered: u64,
    /// Circuit-switched flits ejected at their destination.
    pub cs_flits_delivered: u64,
    /// Configuration flits ejected (setup/teardown/ack).
    pub config_flits_delivered: u64,
    /// Packet-switched flits that used an idle reserved slot (§II-D).
    pub slots_stolen: u64,
    /// Circuit path setup attempts issued by this node.
    pub setup_attempts: u64,
    /// Setup attempts that failed (slot or output-port conflict).
    pub setup_failures: u64,
    /// Messages sent circuit-switched by hitchhiker-sharing (§III-A1).
    pub hitchhike_rides: u64,
    /// Messages sent circuit-switched by vicinity-sharing (§III-A2).
    pub vicinity_rides: u64,
    /// Path-sharing attempts that failed due to contention and fell back to
    /// packet switching.
    pub sharing_failures: u64,
    /// VC power-gating transitions (activations + deactivations).
    pub vc_gating_transitions: u64,
    /// Slot-table capacity doublings (§II-C dynamic granularity).
    pub slot_table_resizes: u64,
}

macro_rules! for_event_fields {
    ($m:ident ! ($($args:tt)*)) => {
        $m!(($($args)*);
            buffer_writes, buffer_reads, xbar_traversals, va_ops, sa_ops,
            link_flits, slot_lookups, slot_updates, cs_latch_writes,
            dlt_lookups, dlt_updates,
            ps_flits_delivered, cs_flits_delivered, config_flits_delivered,
            slots_stolen, setup_attempts, setup_failures,
            hitchhike_rides, vicinity_rides, sharing_failures,
            vc_gating_transitions, slot_table_resizes,
        );
    };
}

macro_rules! add_fields {
    (($self:ident, $rhs:ident); $($f:ident),* $(,)?) => {
        $( $self.$f += $rhs.$f; )*
    };
}

macro_rules! sub_fields {
    (($out:ident, $self:ident, $rhs:ident); $($f:ident),* $(,)?) => {
        $( $out.$f = $self.$f.saturating_sub($rhs.$f); )*
    };
}

impl EnergyEvents {
    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, rhs: &EnergyEvents) {
        let lhs = self;
        for_event_fields!(add_fields!(lhs, rhs));
    }

    /// Field-wise difference (`self - baseline`); counters are monotonic so
    /// this yields the events of a measurement window from two snapshots.
    pub fn diff(&self, baseline: &EnergyEvents) -> EnergyEvents {
        let mut out = EnergyEvents::default();
        let lhs = self;
        for_event_fields!(sub_fields!(out, lhs, baseline));
        out
    }

    /// Total data flits delivered (packet- plus circuit-switched).
    pub fn data_flits_delivered(&self) -> u64 {
        self.ps_flits_delivered + self.cs_flits_delivered
    }

    /// Fraction of delivered data flits that were circuit-switched
    /// (Table III's "circuit-switched flits percent").
    pub fn cs_flit_fraction(&self) -> f64 {
        let total = self.data_flits_delivered();
        if total == 0 {
            0.0
        } else {
            self.cs_flits_delivered as f64 / total as f64
        }
    }

    /// Fraction of all delivered flits that were configuration messages.
    pub fn config_flit_fraction(&self) -> f64 {
        let total = self.data_flits_delivered() + self.config_flits_delivered;
        if total == 0 {
            0.0
        } else {
            self.config_flits_delivered as f64 / total as f64
        }
    }
}

/// Leakage-state integrals accumulated by the harness, in unit·cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeakageIntegrals {
    /// Powered-on buffer flit-slot cycles (active VCs × depth, summed).
    pub buffer_slot_cycles: u64,
    /// Powered-on slot-table entry cycles.
    pub slot_entry_cycles: u64,
    /// Powered-on DLT entry cycles.
    pub dlt_entry_cycles: u64,
    /// Router cycles (routers × cycles) for fixed leakage/clock components.
    pub router_cycles: u64,
}

/// A log-bucketed latency histogram: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` cycles (bucket 0 covers 0–1). Cheap enough to update on
/// every delivery, precise enough for the percentile figures papers report.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
    count: u64,
}

impl LatencyHistogram {
    pub fn record(&mut self, latency: u64) {
        let b = (64 - latency.leading_zeros()).min(31) as usize;
        self.buckets[b] += 1;
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound of the bucket containing the `p`-quantile (0 < p ≤ 1):
    /// e.g. `quantile(0.99)` bounds the 99th-percentile latency.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&p) {
            return None;
        }
        let target = ((self.count as f64 * p).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i == 31 {
                    u64::MAX
                } else {
                    (1u64 << i).saturating_sub(0)
                });
            }
        }
        None
    }

    pub fn merge(&mut self, rhs: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(rhs.buckets.iter()) {
            *a += b;
        }
        self.count += rhs.count;
    }
}

/// Latency aggregates for one delivered-packet class.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassLatency {
    pub count: u64,
    pub latency_sum: u64,
    pub latency_max: u64,
    pub hist: LatencyHistogram,
}

impl ClassLatency {
    pub fn record(&mut self, lat: u64) {
        self.count += 1;
        self.latency_sum += lat;
        self.latency_max = self.latency_max.max(lat);
        self.hist.record(lat);
    }

    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.latency_sum as f64 / self.count as f64
        }
    }
}

/// Latency split by [`DeliveredKind`]: measured data packets vs the three
/// configuration message types. The `data` bucket mirrors the headline
/// measured-data aggregates (`latency_sum`/`latency_max`/`latency_hist`);
/// the configuration buckets record *every* delivery of their kind,
/// measured or not, because configuration packets are never marked
/// measured yet their latencies (setup round-trips especially) are what
/// the split exists to expose.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerClassLatency {
    pub data: ClassLatency,
    pub setup: ClassLatency,
    pub teardown: ClassLatency,
    pub ack: ClassLatency,
}

impl PerClassLatency {
    pub fn class(&self, kind: DeliveredKind) -> &ClassLatency {
        match kind {
            DeliveredKind::Data => &self.data,
            DeliveredKind::Setup => &self.setup,
            DeliveredKind::Teardown => &self.teardown,
            DeliveredKind::Ack => &self.ack,
        }
    }

    fn class_mut(&mut self, kind: DeliveredKind) -> &mut ClassLatency {
        match kind {
            DeliveredKind::Data => &mut self.data,
            DeliveredKind::Setup => &mut self.setup,
            DeliveredKind::Teardown => &mut self.teardown,
            DeliveredKind::Ack => &mut self.ack,
        }
    }
}

/// Aggregate measurement for one simulation run.
///
/// `Serialize` is implemented by hand (not derived): the legacy fields
/// are emitted in declaration order exactly as the derive would, and the
/// fault counters are appended *only when non-zero*, so fault-free runs
/// keep byte-identical result envelopes.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Cycles simulated since the last [`NetStats::begin_measurement`].
    pub measured_cycles: Cycle,
    measurement_start: Cycle,
    /// Packets handed to NICs in the measurement window.
    pub packets_offered: u64,
    /// Measured data packets delivered.
    pub packets_delivered: u64,
    /// Sum of packet latencies (creation → tail ejection), measured packets.
    pub latency_sum: u64,
    /// Maximum measured packet latency.
    pub latency_max: u64,
    /// Measured data flits delivered (for throughput).
    pub flits_delivered: u64,
    /// Measured circuit-switched packets delivered.
    pub cs_packets_delivered: u64,
    /// Latency distribution of measured data packets.
    pub latency_hist: LatencyHistogram,
    /// Latency aggregates split by delivered kind (data/setup/teardown/ack).
    pub class_latency: PerClassLatency,
    /// Configuration packets delivered (measured window).
    pub config_packets_delivered: u64,
    /// Energy events aggregated over all nodes (whole run, including
    /// warm-up: energy is reported for the measurement window by snapshot
    /// subtraction in the drivers).
    pub events: EnergyEvents,
    /// Leakage integrals (measurement window).
    pub leakage: LeakageIntegrals,
    /// Node-steps actually executed in the window (activity scheduler);
    /// equals `node_cycles` under forced always-step.
    pub nodes_stepped: u64,
    /// Node-steps an always-step harness would execute: nodes × cycles.
    /// `nodes_stepped / node_cycles` is the fraction of the network awake.
    pub node_cycles: u64,
    // --- fault-injection counters (serialized only when non-zero) ---------
    /// Directed links taken down by the fault timeline.
    pub link_down_events: u64,
    /// Directed links revived by the fault timeline.
    pub link_up_events: u64,
    /// Flits dropped because their link (or the link they were in flight
    /// on) was killed.
    pub flits_dropped_fault: u64,
    /// Distinct packets losing at least one flit to a fault (the whole
    /// packet is purged and never delivered).
    pub packets_dropped_fault: u64,
    /// Completed fault-repair sequences (circuit teardown → drain →
    /// re-setup) at the TDM controller.
    pub repairs: u64,
    /// Total cycles from each fault taking effect to its repair
    /// completing; `repair_cycle_sum / repairs` is the mean repair latency.
    pub repair_cycle_sum: u64,
}

impl Serialize for NetStats {
    fn to_value(&self) -> Value {
        // Legacy fields first, in declaration order, exactly as
        // `#[derive(Serialize)]` emitted them.
        let mut fields: Vec<(String, Value)> = vec![
            ("measured_cycles".into(), self.measured_cycles.to_value()),
            (
                "measurement_start".into(),
                self.measurement_start.to_value(),
            ),
            ("packets_offered".into(), self.packets_offered.to_value()),
            (
                "packets_delivered".into(),
                self.packets_delivered.to_value(),
            ),
            ("latency_sum".into(), self.latency_sum.to_value()),
            ("latency_max".into(), self.latency_max.to_value()),
            ("flits_delivered".into(), self.flits_delivered.to_value()),
            (
                "cs_packets_delivered".into(),
                self.cs_packets_delivered.to_value(),
            ),
            ("latency_hist".into(), self.latency_hist.to_value()),
            ("class_latency".into(), self.class_latency.to_value()),
            (
                "config_packets_delivered".into(),
                self.config_packets_delivered.to_value(),
            ),
            ("events".into(), self.events.to_value()),
            ("leakage".into(), self.leakage.to_value()),
            ("nodes_stepped".into(), self.nodes_stepped.to_value()),
            ("node_cycles".into(), self.node_cycles.to_value()),
        ];
        for (name, v) in [
            ("link_down_events", self.link_down_events),
            ("link_up_events", self.link_up_events),
            ("flits_dropped_fault", self.flits_dropped_fault),
            ("packets_dropped_fault", self.packets_dropped_fault),
            ("repairs", self.repairs),
            ("repair_cycle_sum", self.repair_cycle_sum),
        ] {
            if v != 0 {
                fields.push((name.into(), v.to_value()));
            }
        }
        Value::Object(fields)
    }
}

impl Deserialize for NetStats {}

impl NetStats {
    /// Reset measurement counters; subsequent deliveries are recorded
    /// relative to `now`.
    pub fn begin_measurement(&mut self, now: Cycle) {
        *self = NetStats {
            measurement_start: now,
            ..NetStats::default()
        };
    }

    pub fn end_measurement(&mut self, now: Cycle) {
        self.measured_cycles = now.saturating_sub(self.measurement_start);
    }

    /// Record a delivered packet.
    pub fn record_delivery(&mut self, d: &DeliveredPacket) {
        let lat = d.delivered.saturating_sub(d.created);
        if d.class == MsgClass::Config {
            self.config_packets_delivered += 1;
            self.class_latency.class_mut(d.kind).record(lat);
            return;
        }
        if !d.measured {
            return;
        }
        self.packets_delivered += 1;
        self.flits_delivered += d.len_flits as u64;
        self.latency_sum += lat;
        self.latency_max = self.latency_max.max(lat);
        self.latency_hist.record(lat);
        self.class_latency.data.record(lat);
        if d.switching == Switching::Circuit {
            self.cs_packets_delivered += 1;
        }
    }

    /// Average measured packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            f64::NAN
        } else {
            self.latency_sum as f64 / self.packets_delivered as f64
        }
    }

    /// Accepted throughput in flits/node/cycle.
    pub fn throughput(&self, nodes: usize) -> f64 {
        if self.measured_cycles == 0 {
            0.0
        } else {
            self.flits_delivered as f64 / (self.measured_cycles as f64 * nodes as f64)
        }
    }
}

// Snapshot encodings: statistics are state too — a restored run must
// report exactly what the continuous run would have.

impl_snap!(EnergyEvents {
    buffer_writes,
    buffer_reads,
    xbar_traversals,
    va_ops,
    sa_ops,
    link_flits,
    slot_lookups,
    slot_updates,
    cs_latch_writes,
    dlt_lookups,
    dlt_updates,
    ps_flits_delivered,
    cs_flits_delivered,
    config_flits_delivered,
    slots_stolen,
    setup_attempts,
    setup_failures,
    hitchhike_rides,
    vicinity_rides,
    sharing_failures,
    vc_gating_transitions,
    slot_table_resizes
});

impl_snap!(LeakageIntegrals {
    buffer_slot_cycles,
    slot_entry_cycles,
    dlt_entry_cycles,
    router_cycles
});

impl_snap!(LatencyHistogram { buckets, count });

impl_snap!(ClassLatency {
    count,
    latency_sum,
    latency_max,
    hist
});

impl_snap!(PerClassLatency {
    data,
    setup,
    teardown,
    ack
});

impl_snap!(NetStats {
    measured_cycles,
    measurement_start,
    packets_offered,
    packets_delivered,
    latency_sum,
    latency_max,
    flits_delivered,
    cs_packets_delivered,
    latency_hist,
    class_latency,
    config_packets_delivered,
    events,
    leakage,
    nodes_stepped,
    node_cycles,
    link_down_events,
    link_up_events,
    flits_dropped_fault,
    packets_dropped_fault,
    repairs,
    repair_cycle_sum
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::PacketId;
    use crate::geometry::NodeId;

    fn delivered(lat: u64, measured: bool, class: MsgClass) -> DeliveredPacket {
        DeliveredPacket {
            id: PacketId(0),
            src: NodeId(0),
            dst: NodeId(1),
            class,
            kind: match class {
                MsgClass::Data => DeliveredKind::Data,
                MsgClass::Config => DeliveredKind::Setup,
            },
            switching: Switching::Packet,
            len_flits: 5,
            created: 100,
            delivered: 100 + lat,
            measured,
        }
    }

    #[test]
    fn latency_accounting() {
        let mut s = NetStats::default();
        s.begin_measurement(0);
        s.record_delivery(&delivered(10, true, MsgClass::Data));
        s.record_delivery(&delivered(30, true, MsgClass::Data));
        s.record_delivery(&delivered(1000, false, MsgClass::Data)); // warm-up: ignored
        s.record_delivery(&delivered(5, true, MsgClass::Config)); // config: separate
        assert_eq!(s.packets_delivered, 2);
        assert!((s.avg_latency() - 20.0).abs() < 1e-9);
        assert_eq!(s.latency_max, 30);
        assert_eq!(s.config_packets_delivered, 1);
    }

    #[test]
    fn throughput_accounting() {
        let mut s = NetStats::default();
        s.begin_measurement(1000);
        s.record_delivery(&delivered(10, true, MsgClass::Data));
        s.record_delivery(&delivered(10, true, MsgClass::Data));
        s.end_measurement(1100);
        assert_eq!(s.measured_cycles, 100);
        // 10 flits over 100 cycles and 4 nodes.
        assert!((s.throughput(4) - 10.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn events_merge_and_fractions() {
        let mut a = EnergyEvents::default();
        let b = EnergyEvents {
            ps_flits_delivered: 60,
            cs_flits_delivered: 40,
            config_flits_delivered: 1,
            buffer_writes: 7,
            ..Default::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.buffer_writes, 14);
        assert!((a.cs_flit_fraction() - 0.4).abs() < 1e-12);
        assert!(a.config_flit_fraction() > 0.0 && a.config_flit_fraction() < 0.011);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let mut h = LatencyHistogram::default();
        for lat in [3u64, 5, 9, 17, 33, 65, 129, 300, 700, 2000] {
            h.record(lat);
        }
        assert_eq!(h.count(), 10);
        // Median of the data is between 33 and 65; the bucket upper bound
        // for 33..64 is 64.
        let p50 = h.quantile(0.5).unwrap();
        assert!((32..=64).contains(&p50), "p50 bound {p50}");
        // p99/p100 bound the maximum (2000 lies in [1024, 2048)).
        let p100 = h.quantile(1.0).unwrap();
        assert!((2000..=2048).contains(&p100), "p100 bound {p100}");
        // Quantiles are monotone.
        assert!(h.quantile(0.1).unwrap() <= h.quantile(0.9).unwrap());
        assert_eq!(LatencyHistogram::default().quantile(0.5), None);
    }

    #[test]
    fn histogram_merge_sums_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(10);
        b.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.quantile(1.0).unwrap() >= 1000);
    }

    #[test]
    fn stats_populate_histogram() {
        let mut s = NetStats::default();
        s.begin_measurement(0);
        s.record_delivery(&delivered(10, true, MsgClass::Data));
        s.record_delivery(&delivered(100, true, MsgClass::Data));
        assert_eq!(s.latency_hist.count(), 2);
        assert!(s.latency_hist.quantile(1.0).unwrap() >= 100);
    }

    #[test]
    fn events_diff_recovers_window() {
        let base = EnergyEvents {
            buffer_writes: 10,
            link_flits: 4,
            ..Default::default()
        };
        let mut total = base;
        total.merge(&EnergyEvents {
            buffer_writes: 5,
            sa_ops: 3,
            ..Default::default()
        });
        let window = total.diff(&base);
        assert_eq!(window.buffer_writes, 5);
        assert_eq!(window.sa_ops, 3);
        assert_eq!(window.link_flits, 0);
    }

    #[test]
    fn per_class_latency_split() {
        let mut s = NetStats::default();
        s.begin_measurement(0);
        s.record_delivery(&delivered(10, true, MsgClass::Data));
        s.record_delivery(&delivered(30, true, MsgClass::Data));
        s.record_delivery(&delivered(500, false, MsgClass::Data)); // warm-up
        let mut ack = delivered(7, false, MsgClass::Config);
        ack.kind = DeliveredKind::Ack;
        s.record_delivery(&ack);
        s.record_delivery(&delivered(5, false, MsgClass::Config)); // setup

        // The data bucket mirrors the headline measured-data aggregates.
        assert_eq!(s.class_latency.data.count, s.packets_delivered);
        assert_eq!(s.class_latency.data.latency_sum, s.latency_sum);
        assert_eq!(s.class_latency.data.latency_max, s.latency_max);
        assert_eq!(s.class_latency.data.hist.count(), s.latency_hist.count());
        // Config kinds record even unmeasured deliveries.
        assert_eq!(s.class_latency.setup.count, 1);
        assert_eq!(s.class_latency.setup.latency_max, 5);
        assert_eq!(s.class_latency.ack.count, 1);
        assert_eq!(s.class_latency.teardown.count, 0);
        assert!((s.class_latency.class(DeliveredKind::Ack).avg() - 7.0).abs() < 1e-12);
        assert!(s.class_latency.teardown.avg().is_nan());
    }

    #[test]
    fn histogram_record_zero_lands_in_bucket_zero() {
        let mut h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.count(), 1);
        // Zero occupies bucket 0, whose quantile bound is 2^0 = 1.
        assert_eq!(h.quantile(1.0), Some(1));
        // 1 has bit-length 1 and lands in the next bucket (bound 2).
        h.record(1);
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(1.0), Some(2));
    }

    #[test]
    fn histogram_exact_bucket_boundaries() {
        // Powers of two open a new bucket: 2^k lands in bucket k+1 while
        // 2^k - 1 stays in bucket k.
        for k in 1..10u32 {
            let mut h = LatencyHistogram::default();
            h.record((1u64 << k) - 1);
            assert_eq!(
                h.quantile(1.0),
                Some(1u64 << k),
                "2^{k} - 1 stays in bucket {k}"
            );
            let mut h = LatencyHistogram::default();
            h.record(1u64 << k);
            assert_eq!(
                h.quantile(1.0),
                Some(1u64 << (k + 1)),
                "2^{k} opens the next bucket"
            );
        }
        // Saturation: latencies with bit length ≥ 31 share the top bucket,
        // whose quantile bound is u64::MAX.
        let mut h = LatencyHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn histogram_quantile_on_empty_is_none() {
        let h = LatencyHistogram::default();
        for p in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(p), None);
        }
        // Out-of-range p is also refused on a populated histogram.
        let mut h = LatencyHistogram::default();
        h.record(5);
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(h.quantile(-0.1), None);
    }

    #[test]
    fn histogram_merge_empty_into_populated_and_back() {
        let mut populated = LatencyHistogram::default();
        populated.record(10);
        populated.record(100);
        let before = populated.clone();
        populated.merge(&LatencyHistogram::default());
        assert_eq!(populated, before, "merging empty must be a no-op");
        let mut empty = LatencyHistogram::default();
        empty.merge(&before);
        assert_eq!(empty, before, "merging into empty must copy");
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = NetStats::default();
        assert!(s.avg_latency().is_nan());
        assert_eq!(s.throughput(36), 0.0);
        assert_eq!(EnergyEvents::default().cs_flit_fraction(), 0.0);
    }
}
