//! Routing functions: deterministic dimension-order routing for data
//! packets and minimal adaptive routing for configuration packets
//! (Table I).
//!
//! All routes are topology-aware: on a torus, dimension-order routing
//! takes the shorter way around each ring (ties resolve to the positive
//! direction so the choice never flips mid-path), and deadlock freedom
//! comes from the dateline VC-class discipline in the router pipeline
//! (DESIGN.md §13) rather than from the turn restrictions a mesh enjoys.
//! The turn-model routes (`west_first_*`, `odd_even_*`) encode mesh-only
//! deadlock arguments and must not be used on a torus — callers fall back
//! to deterministic dimension-order routing there.

use crate::geometry::{Direction, NodeId, Port};
use crate::topology::Mesh;

/// Deterministic dimension-order (X-Y) routing: fully traverse the X
/// dimension, then Y. Deadlock-free on a mesh without extra VC classes;
/// on a torus it is minimal (shorter way around each ring) and relies on
/// the dateline VC classes for deadlock freedom.
pub fn xy_route(mesh: &Mesh, cur: NodeId, dst: NodeId) -> Port {
    let c = mesh.coord(cur);
    let d = mesh.coord(dst);
    if let Some(dir) = mesh.x_dir_toward(c.x, d.x) {
        dir.as_port()
    } else if let Some(dir) = mesh.y_dir_toward(c.y, d.y) {
        dir.as_port()
    } else {
        Port::Local
    }
}

/// The set of productive (minimal) directions toward `dst` — at most one
/// per dimension (on a torus an exact half-way tie resolves to the
/// positive direction, matching [`xy_route`]).
pub fn minimal_directions(mesh: &Mesh, cur: NodeId, dst: NodeId) -> DirPair {
    let c = mesh.coord(cur);
    let d = mesh.coord(dst);
    let mut dirs = DirPair::default();
    if let Some(dir) = mesh.x_dir_toward(c.x, d.x) {
        dirs.push(dir);
    }
    if let Some(dir) = mesh.y_dir_toward(c.y, d.y) {
        dirs.push(dir);
    }
    dirs
}

/// Minimal adaptive routing for configuration packets (§II-B "path
/// selection"): among the productive directions, pick the one whose
/// downstream resources score highest (the caller supplies the congestion
/// metric, e.g. free credits). Ties and empty scores fall back to the X-Y
/// choice so the route is always minimal and productive.
pub fn adaptive_route<F: FnMut(Direction) -> u32>(
    mesh: &Mesh,
    cur: NodeId,
    dst: NodeId,
    mut score: F,
) -> Port {
    let dirs = minimal_directions(mesh, cur, dst);
    match dirs.len() {
        0 => Port::Local,
        1 => dirs.get(0).as_port(),
        _ => {
            let xy = xy_route(mesh, cur, dst);
            let mut best = xy;
            let mut best_score = 0u32;
            for d in dirs.iter() {
                let s = score(d);
                let p = d.as_port();
                if p == xy {
                    // X-Y choice wins ties.
                    if s >= best_score {
                        best = p;
                        best_score = s;
                    }
                } else if s > best_score {
                    best = p;
                    best_score = s;
                }
            }
            best
        }
    }
}

/// Directions permitted by the odd-even turn model (Chiu 2000) for a packet
/// from `src` currently at `cur`, heading to `dst`. Minimal and
/// deadlock-free without extra VC classes, which is what lets configuration
/// packets route adaptively while data packets stay on X-Y.
pub fn odd_even_directions(mesh: &Mesh, src: NodeId, cur: NodeId, dst: NodeId) -> DirPair {
    debug_assert!(
        !mesh.is_torus(),
        "odd-even turn model is a mesh-only deadlock argument"
    );
    let s = mesh.coord(src);
    let c = mesh.coord(cur);
    let d = mesh.coord(dst);
    let mut avail = DirPair::default();
    if c == d {
        return avail;
    }
    let vertical = if d.y > c.y {
        Direction::South
    } else {
        Direction::North
    };
    if d.x == c.x {
        avail.push(vertical);
    } else if d.x > c.x {
        // Eastbound.
        if d.y == c.y {
            avail.push(Direction::East);
        } else {
            // May only turn off the east heading (N/S) in odd columns or in
            // the source column.
            if c.x % 2 == 1 || c.x == s.x {
                avail.push(vertical);
            }
            // May only continue east if the destination column is odd or we
            // are not yet adjacent to it (EN/ES turns are forbidden in even
            // columns, so we must be able to turn later).
            if d.x % 2 == 1 || d.x - c.x != 1 {
                avail.push(Direction::East);
            }
        }
    } else {
        // Westbound: W is always productive; NW/SW turns only from even
        // columns.
        avail.push(Direction::West);
        if d.y != c.y && c.x.is_multiple_of(2) {
            avail.push(vertical);
        }
    }
    debug_assert!(!avail.is_empty(), "odd-even must offer a direction");
    avail
}

/// Directions permitted by the west-first turn model for a minimal route:
/// a packet with any westward displacement must finish it first (no
/// adaptivity); otherwise every productive direction is allowed.
///
/// West-first forbids exactly the turns into West (`N→W`, `S→W`, `E→W`).
/// Deterministic X-Y routing uses none of those turns, so **X-Y data
/// traffic and west-first adaptive configuration traffic can safely share
/// the same virtual channels**: the union of their channel dependencies is
/// the west-first set, which is acyclic. (The odd-even model above is *not*
/// safe to mix with X-Y in shared VCs — X-Y takes `ES`/`EN` turns in even
/// columns — which is why the routers use this model for configuration
/// packets.)
pub fn west_first_directions(mesh: &Mesh, cur: NodeId, dst: NodeId) -> DirPair {
    debug_assert!(
        !mesh.is_torus(),
        "west-first turn model is a mesh-only deadlock argument"
    );
    let c = mesh.coord(cur);
    let d = mesh.coord(dst);
    let mut dirs = DirPair::default();
    if d.x < c.x {
        dirs.push(Direction::West);
        return dirs;
    }
    if d.x > c.x {
        dirs.push(Direction::East);
    }
    if d.y > c.y {
        dirs.push(Direction::South);
    } else if d.y < c.y {
        dirs.push(Direction::North);
    }
    dirs
}

/// At most two permitted directions, stored inline — the adaptive route
/// query sits on the per-flit hot path, so it must not heap-allocate
/// (DESIGN.md §17).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirPair {
    len: u8,
    dirs: [Option<Direction>; 2],
}

impl DirPair {
    fn push(&mut self, d: Direction) {
        self.dirs[self.len as usize] = Some(d);
        self.len += 1;
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn get(&self, i: usize) -> Direction {
        self.dirs[i].expect("index within len")
    }

    pub fn last(&self) -> Option<Direction> {
        self.len.checked_sub(1).map(|i| self.get(i as usize))
    }

    pub fn contains(&self, d: Direction) -> bool {
        self.iter().any(|x| x == d)
    }

    pub fn iter(&self) -> impl Iterator<Item = Direction> + '_ {
        self.dirs[..self.len as usize].iter().map(|d| d.unwrap())
    }
}

impl IntoIterator for DirPair {
    type Item = Direction;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<Direction>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.dirs.into_iter().flatten()
    }
}

/// Minimal adaptive routing under the west-first turn model: choose the
/// permitted direction with the best congestion score.
pub fn west_first_route<F: FnMut(Direction) -> u32>(
    mesh: &Mesh,
    cur: NodeId,
    dst: NodeId,
    mut score: F,
) -> Port {
    let dirs = west_first_directions(mesh, cur, dst);
    match dirs.len() {
        0 => Port::Local,
        1 => dirs.get(0).as_port(),
        _ => {
            let mut best = dirs.get(0);
            let mut best_score = score(best);
            for d in dirs.iter().skip(1) {
                let s = score(d);
                if s > best_score {
                    best = d;
                    best_score = s;
                }
            }
            best.as_port()
        }
    }
}

/// Minimal adaptive routing restricted by the odd-even turn model: choose
/// the permitted direction with the best congestion score.
pub fn odd_even_route<F: FnMut(Direction) -> u32>(
    mesh: &Mesh,
    src: NodeId,
    cur: NodeId,
    dst: NodeId,
    mut score: F,
) -> Port {
    let dirs = odd_even_directions(mesh, src, cur, dst);
    match dirs.len() {
        0 => Port::Local,
        1 => dirs.get(0).as_port(),
        _ => {
            let mut best = dirs.get(0);
            let mut best_score = score(best);
            for d in dirs.iter().skip(1) {
                let s = score(d);
                if s > best_score {
                    best = d;
                    best_score = s;
                }
            }
            best.as_port()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Coord;

    fn mesh() -> Mesh {
        Mesh::square(6)
    }

    #[test]
    fn xy_goes_x_first() {
        let m = mesh();
        let cur = m.id(Coord::new(1, 1));
        let dst = m.id(Coord::new(4, 4));
        assert_eq!(xy_route(&m, cur, dst), Port::East);
        let aligned = m.id(Coord::new(4, 1));
        assert_eq!(xy_route(&m, aligned, dst), Port::South);
        assert_eq!(xy_route(&m, dst, dst), Port::Local);
    }

    #[test]
    fn xy_route_is_minimal_and_terminates() {
        let m = mesh();
        for src in m.nodes() {
            for dst in m.nodes() {
                let mut cur = src;
                let mut hops = 0;
                loop {
                    let p = xy_route(&m, cur, dst);
                    if p == Port::Local {
                        break;
                    }
                    cur = m.neighbor(cur, p.direction().unwrap()).unwrap();
                    hops += 1;
                    assert!(hops <= m.hops(src, dst), "non-minimal XY route");
                }
                assert_eq!(cur, dst);
                assert_eq!(hops, m.hops(src, dst));
            }
        }
    }

    #[test]
    fn minimal_directions_counts() {
        let m = mesh();
        let cur = m.id(Coord::new(2, 2));
        assert_eq!(minimal_directions(&m, cur, m.id(Coord::new(5, 5))).len(), 2);
        assert_eq!(minimal_directions(&m, cur, m.id(Coord::new(2, 0))).len(), 1);
        assert_eq!(minimal_directions(&m, cur, cur).len(), 0);
    }

    #[test]
    fn adaptive_prefers_uncongested() {
        let m = mesh();
        let cur = m.id(Coord::new(0, 0));
        let dst = m.id(Coord::new(3, 3));
        // South has far more free credits than East: adaptive must pick it.
        let p = adaptive_route(&m, cur, dst, |d| if d == Direction::South { 10 } else { 1 });
        assert_eq!(p, Port::South);
        // Ties resolve to the X-Y (East) choice.
        let p = adaptive_route(&m, cur, dst, |_| 5);
        assert_eq!(p, Port::East);
    }

    #[test]
    fn odd_even_is_minimal_and_complete() {
        // From every (src, dst) pair, every greedy walk following odd-even
        // choices is minimal and reaches the destination.
        let m = mesh();
        for src in m.nodes() {
            for dst in m.nodes() {
                if src == dst {
                    continue;
                }
                // Explore the worst-scoring choice at each step too.
                for pick_last in [false, true] {
                    let mut cur = src;
                    let mut hops = 0u32;
                    while cur != dst {
                        let dirs = odd_even_directions(&m, src, cur, dst);
                        assert!(!dirs.is_empty(), "stuck at {cur:?} for {src:?}->{dst:?}");
                        let d = if pick_last {
                            dirs.last().unwrap()
                        } else {
                            dirs.get(0)
                        };
                        let next = m.neighbor(cur, d).expect("productive direction");
                        assert_eq!(m.hops(next, dst) + 1, m.hops(cur, dst), "non-minimal");
                        cur = next;
                        hops += 1;
                        assert!(hops <= m.hops(src, dst));
                    }
                    assert_eq!(hops, m.hops(src, dst));
                }
            }
        }
    }

    #[test]
    fn odd_even_respects_turn_rules() {
        // EN/ES turns never taken in even columns; NW/SW never in odd ones.
        // We verify by checking the offered directions directly.
        let m = mesh();
        for src in m.nodes() {
            for dst in m.nodes() {
                for cur in m.nodes() {
                    let c = m.coord(cur);
                    let d = m.coord(dst);
                    let dirs = odd_even_directions(&m, src, cur, dst);
                    for dir in dirs {
                        if matches!(dir, Direction::North | Direction::South)
                            && d.x > c.x
                            && c.x.is_multiple_of(2)
                        {
                            // Turning off an eastbound heading in an even
                            // column is only legal in the source column.
                            assert_eq!(c.x, m.coord(src).x);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn odd_even_route_picks_allowed_best() {
        let m = mesh();
        let src = m.id(Coord::new(1, 0));
        let dst = m.id(Coord::new(3, 3));
        let p = odd_even_route(
            &m,
            src,
            src,
            dst,
            |d| if d == Direction::South { 9 } else { 1 },
        );
        // Column 1 is odd so both E and S are allowed; S scores higher.
        assert_eq!(p, Port::South);
    }

    #[test]
    fn torus_xy_is_minimal_and_terminates() {
        for t in [Mesh::torus(5, 4), Mesh::torus(6, 6), Mesh::torus(2, 3)] {
            for src in t.nodes() {
                for dst in t.nodes() {
                    let mut cur = src;
                    let mut hops = 0;
                    loop {
                        let p = xy_route(&t, cur, dst);
                        if p == Port::Local {
                            break;
                        }
                        cur = t.neighbor(cur, p.direction().unwrap()).unwrap();
                        hops += 1;
                        assert!(hops <= t.hops(src, dst), "non-minimal torus XY route");
                    }
                    assert_eq!(cur, dst);
                    assert_eq!(hops, t.hops(src, dst));
                }
            }
        }
    }

    #[test]
    fn torus_xy_direction_is_stable_along_a_dimension() {
        // The shorter-way-around choice (and its tie break) must never
        // flip while a packet is still crossing that dimension; otherwise
        // a packet could ping-pong on an even-radix ring.
        let t = Mesh::torus(6, 6);
        for src in t.nodes() {
            for dst in t.nodes() {
                let mut cur = src;
                let mut x_dir: Option<Port> = None;
                loop {
                    let p = xy_route(&t, cur, dst);
                    if p == Port::Local {
                        break;
                    }
                    if matches!(p, Port::East | Port::West) {
                        if let Some(prev) = x_dir {
                            assert_eq!(prev, p, "X heading flipped mid-dimension");
                        }
                        x_dir = Some(p);
                    }
                    cur = t.neighbor(cur, p.direction().unwrap()).unwrap();
                }
            }
        }
    }

    #[test]
    fn adaptive_is_always_productive() {
        let m = mesh();
        for src in m.nodes() {
            for dst in m.nodes() {
                if src == dst {
                    continue;
                }
                let p = adaptive_route(&m, src, dst, |d| d.index() as u32);
                let dir = p.direction().expect("productive port");
                let n = m.neighbor(src, dir).unwrap();
                assert_eq!(m.hops(n, dst) + 1, m.hops(src, dst));
            }
        }
    }
}

#[cfg(test)]
mod west_first_tests {
    use super::*;
    use crate::geometry::Coord;

    #[test]
    fn west_first_is_minimal_and_complete() {
        let m = Mesh::square(6);
        for src in m.nodes() {
            for dst in m.nodes() {
                if src == dst {
                    continue;
                }
                for pick_last in [false, true] {
                    let mut cur = src;
                    let mut hops = 0u32;
                    while cur != dst {
                        let dirs = west_first_directions(&m, cur, dst);
                        assert!(!dirs.is_empty());
                        let d = if pick_last {
                            dirs.last().unwrap()
                        } else {
                            dirs.get(0)
                        };
                        let next = m.neighbor(cur, d).expect("productive");
                        assert_eq!(m.hops(next, dst) + 1, m.hops(cur, dst));
                        cur = next;
                        hops += 1;
                        assert!(hops <= m.hops(src, dst));
                    }
                }
            }
        }
    }

    #[test]
    fn never_turns_into_west() {
        // Once a west-first walk leaves the west heading, it never offers
        // West again — the defining property that makes it safe to mix
        // with X-Y in shared VCs.
        let m = Mesh::square(6);
        for src in m.nodes() {
            for dst in m.nodes() {
                if src == dst {
                    continue;
                }
                let mut cur = src;
                let mut left_west = false;
                while cur != dst {
                    let dirs = west_first_directions(&m, cur, dst);
                    if left_west {
                        assert!(
                            !dirs.contains(Direction::West),
                            "turn into West offered after leaving the west heading"
                        );
                    }
                    let d = dirs.get(0);
                    if d != Direction::West {
                        left_west = true;
                    }
                    cur = m.neighbor(cur, d).expect("productive");
                }
            }
        }
    }

    #[test]
    fn westward_displacement_allows_no_adaptivity() {
        let m = Mesh::square(6);
        let cur = m.id(Coord::new(4, 2));
        let dst = m.id(Coord::new(1, 5));
        let dirs = west_first_directions(&m, cur, dst);
        assert_eq!(dirs.len(), 1);
        assert_eq!(dirs.get(0), Direction::West);
        // Pure eastward+vertical offers both.
        let dst2 = m.id(Coord::new(5, 5));
        assert_eq!(west_first_directions(&m, cur, dst2).len(), 2);
    }

    #[test]
    fn west_first_route_prefers_high_score() {
        let m = Mesh::square(6);
        let cur = m.id(Coord::new(1, 1));
        let dst = m.id(Coord::new(4, 4));
        let p = west_first_route(&m, cur, dst, |d| if d == Direction::South { 9 } else { 1 });
        assert_eq!(p, Port::South);
    }
}
