//! Mesh topology: node identifiers, coordinates, ports and directions.

use serde::{Deserialize, Serialize};

/// Identifier of a node (tile) in the network. Nodes are numbered in
/// row-major order: `id = y * k_x + x`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An (x, y) coordinate on the mesh. `x` grows east, `y` grows south.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    pub x: u16,
    pub y: u16,
}

impl Coord {
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance between two coordinates.
    pub fn manhattan(self, other: Coord) -> u32 {
        (self.x.abs_diff(other.x) + self.y.abs_diff(other.y)) as u32
    }
}

/// One of the four inter-router link directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    North = 0,
    East = 1,
    South = 2,
    West = 3,
}

impl Direction {
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn from_index(i: usize) -> Direction {
        Self::ALL[i]
    }

    /// The direction a flit sent this way arrives *from* at the neighbour.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    pub fn as_port(self) -> Port {
        match self {
            Direction::North => Port::North,
            Direction::East => Port::East,
            Direction::South => Port::South,
            Direction::West => Port::West,
        }
    }
}

/// A router port: the local (NIC) port plus the four link directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Port {
    Local = 0,
    North = 1,
    East = 2,
    South = 3,
    West = 4,
}

impl Port {
    pub const COUNT: usize = 5;
    pub const ALL: [Port; 5] = [
        Port::Local,
        Port::North,
        Port::East,
        Port::South,
        Port::West,
    ];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn from_index(i: usize) -> Port {
        Self::ALL[i]
    }

    pub fn direction(self) -> Option<Direction> {
        match self {
            Port::Local => None,
            Port::North => Some(Direction::North),
            Port::East => Some(Direction::East),
            Port::South => Some(Direction::South),
            Port::West => Some(Direction::West),
        }
    }
}

/// A `k_x × k_y` 2D mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    kx: u16,
    ky: u16,
}

impl Mesh {
    /// Create a mesh with the given dimensions. Panics if either is zero.
    pub fn new(kx: u16, ky: u16) -> Self {
        assert!(kx > 0 && ky > 0, "mesh dimensions must be positive");
        // Node ids are packed into u16 flit fields with u16::MAX reserved
        // as the "no node" sentinel (see `crate::flit`).
        assert!(
            (kx as usize) * (ky as usize) < u16::MAX as usize,
            "mesh too large for packed 16-bit node ids"
        );
        Mesh { kx, ky }
    }

    /// A square `k × k` mesh.
    pub fn square(k: u16) -> Self {
        Mesh::new(k, k)
    }

    pub fn kx(&self) -> u16 {
        self.kx
    }

    pub fn ky(&self) -> u16 {
        self.ky
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.kx as usize * self.ky as usize
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.len()
    }

    pub fn coord(&self, id: NodeId) -> Coord {
        debug_assert!(self.contains(id));
        Coord {
            x: (id.0 % self.kx as u32) as u16,
            y: (id.0 / self.kx as u32) as u16,
        }
    }

    pub fn id(&self, c: Coord) -> NodeId {
        debug_assert!(c.x < self.kx && c.y < self.ky);
        NodeId(c.y as u32 * self.kx as u32 + c.x as u32)
    }

    /// The neighbour of `id` in `dir`, or `None` at the mesh edge.
    pub fn neighbor(&self, id: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(id);
        let n = match dir {
            Direction::North => {
                if c.y == 0 {
                    return None;
                }
                Coord::new(c.x, c.y - 1)
            }
            Direction::South => {
                if c.y + 1 >= self.ky {
                    return None;
                }
                Coord::new(c.x, c.y + 1)
            }
            Direction::West => {
                if c.x == 0 {
                    return None;
                }
                Coord::new(c.x - 1, c.y)
            }
            Direction::East => {
                if c.x + 1 >= self.kx {
                    return None;
                }
                Coord::new(c.x + 1, c.y)
            }
        };
        Some(self.id(n))
    }

    /// Minimal hop count between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        self.coord(a).manhattan(self.coord(b))
    }

    /// Whether two distinct nodes are mesh neighbours (used by
    /// vicinity-sharing to find hop-off candidates).
    pub fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.hops(a, b) == 1
    }

    /// All mesh neighbours of a node.
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        Direction::ALL
            .into_iter()
            .filter_map(move |d| self.neighbor(id, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let m = Mesh::square(6);
        for id in m.nodes() {
            assert_eq!(m.id(m.coord(id)), id);
        }
        assert_eq!(m.len(), 36);
    }

    #[test]
    fn neighbors_edges() {
        let m = Mesh::square(4);
        let corner = m.id(Coord::new(0, 0));
        assert_eq!(m.neighbor(corner, Direction::North), None);
        assert_eq!(m.neighbor(corner, Direction::West), None);
        assert_eq!(
            m.neighbor(corner, Direction::East),
            Some(m.id(Coord::new(1, 0)))
        );
        assert_eq!(
            m.neighbor(corner, Direction::South),
            Some(m.id(Coord::new(0, 1)))
        );
    }

    #[test]
    fn neighbor_symmetry() {
        let m = Mesh::new(5, 3);
        for id in m.nodes() {
            for d in Direction::ALL {
                if let Some(n) = m.neighbor(id, d) {
                    assert_eq!(m.neighbor(n, d.opposite()), Some(id));
                }
            }
        }
    }

    #[test]
    fn hops_and_adjacency() {
        let m = Mesh::square(6);
        let a = m.id(Coord::new(1, 1));
        let b = m.id(Coord::new(4, 3));
        assert_eq!(m.hops(a, b), 5);
        assert!(!m.adjacent(a, b));
        assert!(m.adjacent(a, m.id(Coord::new(1, 2))));
        assert!(!m.adjacent(a, a));
    }

    #[test]
    fn direction_opposite_involution() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn port_direction_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(d.as_port().direction(), Some(d));
        }
        assert_eq!(Port::Local.direction(), None);
    }

    #[test]
    fn rectangular_mesh() {
        let m = Mesh::new(8, 2);
        assert_eq!(m.len(), 16);
        let last = m.id(Coord::new(7, 1));
        assert_eq!(last, NodeId(15));
        assert_eq!(m.neighbor(last, Direction::East), None);
        assert_eq!(m.neighbor(last, Direction::South), None);
    }
}
