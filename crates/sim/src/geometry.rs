//! Geometry primitives: node identifiers, coordinates, ports and
//! directions. The topology types themselves live in [`crate::topology`].

use serde::{Deserialize, Serialize};

/// Identifier of a node (tile) in the network. Nodes are numbered in
/// row-major order: `id = y * k_x + x`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An (x, y) coordinate on the mesh. `x` grows east, `y` grows south.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    pub x: u16,
    pub y: u16,
}

impl Coord {
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance between two coordinates.
    pub fn manhattan(self, other: Coord) -> u32 {
        (self.x.abs_diff(other.x) + self.y.abs_diff(other.y)) as u32
    }
}

/// One of the four inter-router link directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    North = 0,
    East = 1,
    South = 2,
    West = 3,
}

impl Direction {
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn from_index(i: usize) -> Direction {
        Self::ALL[i]
    }

    /// The direction a flit sent this way arrives *from* at the neighbour.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    pub fn as_port(self) -> Port {
        match self {
            Direction::North => Port::North,
            Direction::East => Port::East,
            Direction::South => Port::South,
            Direction::West => Port::West,
        }
    }
}

/// A router port: the local (NIC) port plus the four link directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Port {
    Local = 0,
    North = 1,
    East = 2,
    South = 3,
    West = 4,
}

impl Port {
    pub const COUNT: usize = 5;
    pub const ALL: [Port; 5] = [
        Port::Local,
        Port::North,
        Port::East,
        Port::South,
        Port::West,
    ];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn from_index(i: usize) -> Port {
        Self::ALL[i]
    }

    pub fn direction(self) -> Option<Direction> {
        match self {
            Port::Local => None,
            Port::North => Some(Direction::North),
            Port::East => Some(Direction::East),
            Port::South => Some(Direction::South),
            Port::West => Some(Direction::West),
        }
    }
}

// Snapshot encodings: ids/coords raw, direction/port as their
// discriminant with range-checked decode.
use crate::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};

impl Snap for NodeId {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u32(self.0);
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        Ok(NodeId(r.u32()?))
    }
}

impl Snap for Direction {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(*self as u8);
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        let i = r.u8()? as usize;
        if i >= Direction::ALL.len() {
            return Err(SnapshotError::Corrupt("Direction tag"));
        }
        Ok(Direction::from_index(i))
    }
}

impl Snap for Port {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(*self as u8);
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        let i = r.u8()? as usize;
        if i >= Port::COUNT {
            return Err(SnapshotError::Corrupt("Port tag"));
        }
        Ok(Port::from_index(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_opposite_involution() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn port_direction_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(d.as_port().direction(), Some(d));
        }
        assert_eq!(Port::Local.direction(), None);
    }
}
