//! The cycle-driven network harness: wires node models together with
//! fixed-latency links, delivers credits and advertisements, and
//! integrates leakage state.
//!
//! Wire timing: a flit emitted during `step(T)` finished switch traversal in
//! `T`, spends `T+1` on the link and is buffered at the neighbour at the
//! start of `T+2`; credits and VC-count advertisements travel on dedicated
//! wires and arrive at `T+1`. This gives circuit-switched flits the paper's
//! two-cycle per-hop latency (§II-D: a flit forwarded at `T` reaches the
//! downstream router at `T+2`).
//!
//! # Wire representation
//!
//! Because every wire has a *fixed* latency (flits exactly 2 cycles,
//! credits/VC counts exactly 1), the in-flight set never holds signals due
//! at more than one future cycle of each parity. Each wire is therefore a
//! pair of per-node slot vectors indexed by delivery-cycle parity instead
//! of a timestamped queue: delivery drains slot `now & 1`, and emission
//! pushes into slot `(now + latency) & 1`. For the 2-cycle flit wires
//! that is the *same* slot just drained, so the buffers double-buffer
//! themselves with no timestamps, no front-of-queue comparisons, and no
//! steady-state allocation (the vectors retain their capacity).
//!
//! # Parallel node stepping
//!
//! The per-cycle work splits into three phases:
//!
//! 1. **Deliver** the wire slots due this cycle into each node.
//! 2. **Step** every node, each writing flits/credits into its own
//!    [`NodeOutputs`] outbox. Nodes share no state, so this phase is
//!    embarrassingly parallel; with [`Network::set_step_threads`] it fans
//!    out over a persistent worker pool.
//! 3. **Route** every outbox onto the wire slots, serially, in ascending
//!    node order.
//!
//! Determinism contract: phase 2 is order-independent (each node touches
//! only its own state and outbox) and phase 3 is always serial and
//! ordered, so serial and parallel stepping produce bit-identical
//! networks. `tests/properties.rs` holds a property test comparing the
//! delivered-packet streams of the two modes cycle by cycle.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use noc_telemetry::{
    EventKind, MetricId, MetricsRegistry, TelemetryConfig, TelemetryReport, TraceSink,
    WindowSnapshot,
};

use crate::arena::ConfigArena;
use crate::dense::BitSet;
use crate::flit::{Credit, Flit, MsgClass, Packet, PacketId, Switching};
use crate::geometry::{Direction, NodeId};
use crate::node::{DeliveredPacket, NodeModel, NodeOutputs, PowerState};
use crate::snapshot::{
    FabricSnapshot, FaultEvent, RouteOverrides, Snap, SnapshotError, SnapshotReader, SnapshotWriter,
};
use crate::stats::{EnergyEvents, NetStats};
use crate::topology::{Mesh, TopoTables};
use crate::Cycle;

/// One contiguous chunk of the node-stepping phase, shipped to a pool
/// worker. The pointers are the bases of the network's `nodes` and
/// `outboxes` vectors; a job owns the disjoint index range `lo..hi` of
/// both, and the main thread blocks until every job of the cycle
/// completes before touching either vector again.
struct StepJob<N> {
    nodes: *mut N,
    outs: *mut NodeOutputs,
    /// Step-set bitmask (base of the network's `step_mask`); workers skip
    /// nodes whose bit is clear. Read-only for the duration of the job.
    mask: *const u64,
    lo: usize,
    hi: usize,
    now: Cycle,
}

// Safety: jobs address disjoint ranges, the main thread waits for all
// completions before reusing the buffers, and the pool can only be built
// through `set_step_threads`, which requires `N: Send`.
unsafe impl<N> Send for StepJob<N> {}

/// Persistent worker pool for the node-stepping phase. Threads are spawned
/// once and live for the network's lifetime; each cycle posts one job per
/// worker and waits on a shared completion channel, so the steady state
/// allocates nothing.
struct StepPool<N> {
    job_txs: Vec<mpsc::Sender<StepJob<N>>>,
    done_rx: mpsc::Receiver<()>,
    handles: Vec<JoinHandle<()>>,
}

impl<N> Drop for StepPool<N> {
    fn drop(&mut self) {
        // Hang up the job channels; workers exit their recv loop.
        self.job_txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Harness-level telemetry state, boxed behind an `Option` so an untraced
/// network pays one null check at each instrumentation site. Node sinks
/// record the router-level event kinds during the (possibly parallel)
/// stepping phase; this records the kinds only the harness can see —
/// injections and activity-scheduler sleep/wake transitions — plus the
/// per-link flit counters and the metrics registry, all touched only in
/// the serial phases, so the determinism contract is untouched.
pub struct NetTelemetry {
    cfg: TelemetryConfig,
    /// Harness-originated events (inject, node sleep/wake).
    sink: TraceSink,
    /// Sleep-state shadow for NodeSleep/NodeWake edge detection.
    asleep: Vec<bool>,
    /// Flits sent per outgoing link, `[node * 4 + direction]`.
    link_flits: Vec<u64>,
    registry: MetricsRegistry,
    m_link_flits: MetricId,
    m_packets_delivered: MetricId,
    m_flits_delivered: MetricId,
    m_latency: MetricId,
    m_active_nodes: MetricId,
    m_buffered_flits: MetricId,
    m_inflight_flits: MetricId,
    /// Next metrics-window boundary (`Cycle::MAX` when windowing is off).
    next_window: Cycle,
    /// End of the last snapshotted window (guards the final flush).
    last_window_end: Cycle,
}

impl NetTelemetry {
    fn new(cfg: &TelemetryConfig, n: usize, now: Cycle) -> Self {
        let mut registry = MetricsRegistry::new();
        let m_link_flits = registry.counter("link_flits");
        let m_packets_delivered = registry.counter("packets_delivered");
        let m_flits_delivered = registry.counter("flits_delivered");
        let m_latency = registry.histogram("packet_latency");
        let m_active_nodes = registry.gauge("active_nodes");
        let m_buffered_flits = registry.gauge("buffered_flits");
        let m_inflight_flits = registry.gauge("inflight_flits");
        NetTelemetry {
            cfg: *cfg,
            sink: TraceSink::ring(cfg),
            asleep: vec![false; n],
            link_flits: vec![0; n * 4],
            registry,
            m_link_flits,
            m_packets_delivered,
            m_flits_delivered,
            m_latency,
            m_active_nodes,
            m_buffered_flits,
            m_inflight_flits,
            next_window: if cfg.window > 0 {
                now + cfg.window
            } else {
                Cycle::MAX
            },
            last_window_end: now,
        }
    }
}

/// Link-fault machinery, boxed behind an `Option` so the fault-free path
/// pays one pointer null check per cycle.
///
/// A fault kills the *flit* data path of a physical link in both
/// directions; the credit and VC-count wires keep working (they model
/// sideband signalling, and dropping credits would permanently shrink
/// upstream buffer budgets — the network could then never drain after a
/// revive). Flits caught mid-flight on a killed wire, and flits emitted
/// onto a dead link later, are dropped with full accounting: their
/// packet is globally purged (buffers, VC state, partial reassembly),
/// upstream buffer slots are refunded as credits, and interned
/// configuration payloads are released, so `ConfigArena::live()` returns
/// to zero once traffic drains.
struct FaultState {
    /// The scheduled timeline, sorted by cycle; `next` indexes the first
    /// event not yet applied.
    timeline: Vec<FaultEvent>,
    next: usize,
    /// Down flags per *directed* link, `[node * 4 + direction]`.
    down: Box<[bool]>,
    /// Number of set `down` flags (fast "any link down" check).
    down_count: usize,
    /// Reroute table shared with every node while links are down.
    overrides: Option<Arc<RouteOverrides>>,
    /// Packet ids already purged (sorted; binary-searched so each lost
    /// packet is counted and swept exactly once).
    lost: Vec<u64>,
    /// Packets that lost a flit at the phase-3 emission guard this cycle;
    /// drained and purged before phase 4.
    pending_lost: Vec<PacketId>,
}

/// A mesh network of `N` tiles.
pub struct Network<N: NodeModel> {
    pub mesh: Mesh,
    pub nodes: Vec<N>,
    /// Per-node inbound flit slots, indexed by delivery-cycle parity
    /// (flit links are exactly 2 cycles; see the module docs).
    flit_slots: [Vec<Vec<(Direction, Flit)>>; 2],
    /// Per-node inbound credit slots (1-cycle wires).
    credit_slots: [Vec<Vec<(Direction, Credit)>>; 2],
    /// Per-node inbound active-VC-count slots (1-cycle wires).
    vc_count_slots: [Vec<Vec<(Direction, u8)>>; 2],
    /// Per-node output scratch, reused every cycle; the fan-out target of
    /// the (optionally parallel) node-stepping phase.
    outboxes: Vec<NodeOutputs>,
    pool: Option<StepPool<N>>,
    now: Cycle,
    pub stats: NetStats,
    /// When set, every measured delivered packet is also appended to
    /// [`Network::delivered_log`] (per-class post-processing, e.g. separate
    /// CPU/GPU latencies for Figure 8).
    pub collect_delivered: bool,
    pub delivered_log: Vec<DeliveredPacket>,
    events_baseline: EnergyEvents,
    scratch_delivered: Vec<DeliveredPacket>,
    // --- Activity scheduler (see the module docs / DESIGN.md §10) ---
    /// Persistently-active nodes: bit `i` set ⇔ node `i` is stepped every
    /// cycle until it declares quiescence via `NodeModel::sleep_until`.
    active_mask: BitSet,
    /// Wake-on-delivery masks, one per delivery-cycle parity (mirroring the
    /// wire slots): bit `i` set ⇔ node `i` has a signal due at the next
    /// cycle of that parity and must be stepped then.
    wake_mask: [BitSet; 2],
    /// Scratch: the set of nodes stepped this cycle.
    step_mask: BitSet,
    /// Pending timed wake-ups as (cycle, node) — TDM slot turns, gating
    /// epochs, share-queue deadlines.
    timers: BinaryHeap<Reverse<(Cycle, u32)>>,
    /// Earliest outstanding timer per node (avoids re-queueing duplicates).
    timer_at: Vec<Cycle>,
    /// Force-step every node every cycle (bit-identity testing).
    always_step: bool,
    // --- O(1) occupancy & leakage bookkeeping ---
    /// Cached per-node occupancy, refreshed whenever a node is stepped or
    /// injected into; `total_occ` is their sum.
    occ_cache: Vec<usize>,
    total_occ: usize,
    /// Flits currently on wires (either parity slot).
    inflight_flits: usize,
    /// Cached per-node power state + running sums, so leakage integration
    /// is O(1) per cycle instead of O(N) while staying cycle-exact (a
    /// sleeping node's power state cannot change).
    power_cache: Vec<PowerState>,
    leak_buffer: u64,
    leak_slot: u64,
    leak_dlt: u64,
    /// Telemetry state, present only while a trace is armed
    /// (see [`Network::configure_telemetry`]).
    telemetry: Option<Box<NetTelemetry>>,
    /// Network-wide configuration-payload slab, shared with every node
    /// via [`NodeModel::attach_arena`].
    arena: Arc<ConfigArena>,
    /// Flat neighbour table precomputed from the topology at construction;
    /// the phase-3 wire-routing loop probes this instead of re-deriving
    /// coordinates per flit. Shared process-wide per topology shape
    /// ([`TopoTables::shared`]) so batch sweeps don't rebuild adjacency
    /// once per point.
    tables: Arc<TopoTables>,
    /// Link-fault state, present only once [`Network::set_faults`] arms a
    /// schedule.
    faults: Option<Box<FaultState>>,
    /// Test-only phase-2 scheduling override: step nodes in this order
    /// instead of ascending index. Exercises the order-independence half
    /// of the determinism contract (see [`Network::set_step_order`]).
    #[cfg(feature = "exhaustive")]
    step_order: Option<Vec<usize>>,
}

impl<N: NodeModel> Network<N> {
    /// Build a network, constructing each tile with `make_node`.
    pub fn new(mesh: Mesh, mut make_node: impl FnMut(NodeId) -> N) -> Self {
        fn slots<T>(n: usize) -> [Vec<Vec<T>>; 2] {
            [
                (0..n).map(|_| Vec::new()).collect(),
                (0..n).map(|_| Vec::new()).collect(),
            ]
        }
        let n = mesh.len();
        let mut net = Network {
            mesh,
            nodes: mesh.nodes().map(&mut make_node).collect(),
            flit_slots: slots(n),
            credit_slots: slots(n),
            vc_count_slots: slots(n),
            outboxes: (0..n).map(|_| NodeOutputs::default()).collect(),
            pool: None,
            now: 0,
            stats: NetStats::default(),
            collect_delivered: false,
            delivered_log: Vec::new(),
            events_baseline: EnergyEvents::default(),
            // Each node ejects at most one PS flit per cycle through its
            // 1-wide local port, so `n` bounds per-cycle completions; the
            // headroom keeps hybrid nodes with extra delivery paths
            // (circuit ejection, share-queue handoff) allocation-free too.
            scratch_delivered: Vec::with_capacity(2 * n),
            active_mask: BitSet::new(n),
            wake_mask: [BitSet::new(n), BitSet::new(n)],
            step_mask: BitSet::new(n),
            timers: BinaryHeap::new(),
            timer_at: vec![Cycle::MAX; n],
            always_step: false,
            occ_cache: vec![0; n],
            total_occ: 0,
            inflight_flits: 0,
            power_cache: vec![PowerState::default(); n],
            leak_buffer: 0,
            leak_slot: 0,
            leak_dlt: 0,
            telemetry: None,
            arena: Arc::new(ConfigArena::new()),
            tables: TopoTables::shared(&mesh),
            faults: None,
            #[cfg(feature = "exhaustive")]
            step_order: None,
        };
        let arena = net.arena.clone();
        for node in &mut net.nodes {
            node.attach_arena(&arena);
        }
        net.attach_flit_slab();
        net.wake_all();
        net
    }

    /// Build the network-owned flit slab — one contiguous allocation of
    /// fixed-depth VC rings across every node — and hand each node its
    /// exclusive carve (DESIGN.md §17). Nodes that opt out (no
    /// [`NodeModel::flit_slab_rings`]) keep their private buffering.
    fn attach_flit_slab(&mut self) {
        let mut total = 0usize;
        let mut depth = 0u8;
        for node in &self.nodes {
            if let Some((rings, d)) = node.flit_slab_rings() {
                assert!(
                    total == 0 || d == depth,
                    "flit slab rings must share one depth"
                );
                total += rings;
                depth = d;
            }
        }
        if total == 0 {
            return;
        }
        let mut slab = crate::slab::FlitSlab::new(total, depth);
        for node in &mut self.nodes {
            if let Some((rings, _)) = node.flit_slab_rings() {
                node.attach_flit_slab(slab.carve(rings));
            }
        }
    }

    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The shared configuration-payload arena.
    pub fn arena(&self) -> &Arc<ConfigArena> {
        &self.arena
    }

    /// Queue a packet at `node`'s NIC. Measured data packets count toward
    /// the offered load.
    pub fn inject(&mut self, node: NodeId, pkt: Packet) {
        if pkt.measured && pkt.class == MsgClass::Data {
            self.stats.packets_offered += 1;
        }
        let i = node.index();
        if let Some(t) = &mut self.telemetry {
            t.sink
                .record(self.now, node.0, EventKind::Inject, 0, pkt.id.0);
        }
        self.nodes[i].inject(self.now, pkt);
        // An injection is external work: wake the node and refresh its
        // occupancy so drain detection stays exact between cycles.
        self.active_mask.set(i);
        let occ = self.nodes[i].occupancy();
        self.total_occ = self.total_occ - self.occ_cache[i] + occ;
        self.occ_cache[i] = occ;
    }

    /// Advance the network one cycle, stepping only the active set: nodes
    /// holding work, nodes with a wire delivery due this cycle, and nodes
    /// whose wake timer expired. Cycle cost is O(active), and the result is
    /// bit-identical to stepping everything (see [`Network::set_always_step`]
    /// and the bit-identity property tests).
    pub fn step(&mut self) {
        let now = self.now;

        // Apply link-fault events due this cycle before the step set is
        // built: kills purge the affected wires (and the packets that lost
        // flits), revives clear the down flags, and either rebuilds the
        // reroute table and wakes everything.
        if self
            .faults
            .as_deref()
            .is_some_and(|f| f.timeline.get(f.next).is_some_and(|e| e.at <= now))
        {
            self.apply_due_faults(now);
        }

        let par = (now & 1) as usize;
        let n = self.nodes.len();
        let words = self.step_mask.words().len();

        // 0. Build the step set. The wake set for this parity is consumed
        // here and re-filled by phase 3 with deliveries due two cycles out.
        self.step_mask
            .assign_union(&self.active_mask, &self.wake_mask[par]);
        self.wake_mask[par].clear_all();
        while let Some(&Reverse((t, i))) = self.timers.peek() {
            if t > now {
                break;
            }
            self.timers.pop();
            let i = i as usize;
            if self.timer_at[i] == t {
                self.timer_at[i] = Cycle::MAX;
            }
            self.step_mask.set(i);
        }
        if self.always_step {
            self.step_mask.set_all();
        }

        // A sleeping node must never have a delivery due: every wire push
        // sets the destination's wake bit for the delivery parity.
        #[cfg(debug_assertions)]
        for i in 0..n {
            if !self.step_mask.get(i) {
                debug_assert!(
                    self.flit_slots[par][i].is_empty()
                        && self.credit_slots[par][i].is_empty()
                        && self.vc_count_slots[par][i].is_empty(),
                    "sleeping node {i} has pending deliveries"
                );
            }
        }

        // 1. Deliver the wire slots due this cycle. Per node: flits first,
        // then credits, then VC counts (credit and VC-count application
        // touch disjoint router state, so their relative order is free).
        for w in 0..words {
            let mut bits = self.step_mask.words()[w];
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.inflight_flits -= self.flit_slots[par][i].len();
                for (dir, flit) in self.flit_slots[par][i].drain(..) {
                    self.nodes[i].accept_flit(now, dir, flit);
                }
                for (dir, credit) in self.credit_slots[par][i].drain(..) {
                    self.nodes[i].accept_credit(now, dir, credit);
                }
                for (dir, count) in self.vc_count_slots[par][i].drain(..) {
                    self.nodes[i].accept_vc_count(now, dir, count);
                }
            }
        }

        // 2. Step the active set, each node into its own outbox.
        #[cfg(feature = "exhaustive")]
        let permuted = self.step_order.take();
        #[cfg(not(feature = "exhaustive"))]
        let permuted: Option<Vec<usize>> = None;
        match (&self.pool, &permuted) {
            (None, Some(order)) => {
                // Exhaustive-schedule harness: same step set, caller's
                // order. Phase 2 must be order-independent, so this is
                // observationally equivalent to the canonical loop below.
                for &i in order {
                    if self.step_mask.get(i) {
                        self.outboxes[i].clear();
                        self.nodes[i].step(now, &mut self.outboxes[i]);
                    }
                }
            }
            (None, None) => {
                for w in 0..words {
                    let mut bits = self.step_mask.words()[w];
                    while bits != 0 {
                        let i = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        self.outboxes[i].clear();
                        self.nodes[i].step(now, &mut self.outboxes[i]);
                    }
                }
            }
            (Some(pool), _) => {
                let chunk = n.div_ceil(pool.job_txs.len());
                let nodes = self.nodes.as_mut_ptr();
                let outs = self.outboxes.as_mut_ptr();
                let mask = self.step_mask.words().as_ptr();
                let mut sent = 0usize;
                for (w, tx) in pool.job_txs.iter().enumerate() {
                    let lo = w * chunk;
                    if lo >= n {
                        break;
                    }
                    let hi = (lo + chunk).min(n);
                    tx.send(StepJob {
                        nodes,
                        outs,
                        mask,
                        lo,
                        hi,
                        now,
                    })
                    .expect("step worker died");
                    sent += 1;
                }
                for _ in 0..sent {
                    pool.done_rx.recv().expect("step worker died");
                }
            }
        }
        #[cfg(feature = "exhaustive")]
        {
            // Taken around the match to sidestep the borrow of `self`;
            // the override persists across cycles.
            self.step_order = permuted;
        }

        // 3. Route the stepped outboxes onto the wires: serial, ascending
        // node order (the determinism contract — see the module docs).
        // Flits re-fill the slot drained in phase 1 (same parity at
        // `now + 2`); 1-cycle signals go to the opposite slot. Every push
        // sets the destination's wake bit for its delivery parity.
        let Network {
            outboxes,
            flit_slots,
            credit_slots,
            vc_count_slots,
            step_mask,
            wake_mask,
            inflight_flits,
            telemetry,
            tables,
            stats,
            arena,
            faults,
            ..
        } = self;
        for (w, &mask_word) in step_mask.words().iter().enumerate() {
            let mut bits = mask_word;
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let out = &mut outboxes[i];
                for (dir, flit) in out.flits.drain(..) {
                    // A flit emitted onto a dead link is dropped at the link
                    // driver: free its config payload, refund the buffer
                    // credit the emitter spent (packet-switched only — CS
                    // flits are unbuffered), and queue the packet for a
                    // global purge before phase 4.
                    if let Some(f) = faults.as_deref_mut() {
                        if f.down[i * 4 + dir.index()] {
                            arena.free(flit.config);
                            stats.flits_dropped_fault += 1;
                            if flit.switching() == Switching::Packet {
                                credit_slots[par ^ 1][i].push((dir, Credit { vc: flit.vc }));
                                wake_mask[par ^ 1].set(i);
                            }
                            if let Some(t) = telemetry.as_deref_mut() {
                                t.sink.record(
                                    now,
                                    i as u32,
                                    EventKind::FlitDroppedFault,
                                    dir.index() as u8,
                                    flit.packet.0,
                                );
                            }
                            f.pending_lost.push(flit.packet);
                            continue;
                        }
                    }
                    let nb = tables
                        .neighbor(i, dir)
                        .unwrap_or_else(|| panic!("node {i} emitted a flit off the {dir:?} edge"));
                    flit_slots[par][nb].push((dir.opposite(), flit));
                    wake_mask[par].set(nb);
                    *inflight_flits += 1;
                    if let Some(t) = telemetry.as_deref_mut() {
                        t.link_flits[i * 4 + dir.index()] += 1;
                        t.registry.add(t.m_link_flits, 1);
                    }
                }
                for (dir, credit) in out.credits.drain(..) {
                    let nb = tables.neighbor(i, dir).unwrap_or_else(|| {
                        panic!("node {i} emitted a credit off the {dir:?} edge")
                    });
                    credit_slots[par ^ 1][nb].push((dir.opposite(), credit));
                    wake_mask[par ^ 1].set(nb);
                }
                for (dir, count) in out.vc_counts.drain(..) {
                    if let Some(nb) = tables.neighbor(i, dir) {
                        vc_count_slots[par ^ 1][nb].push((dir.opposite(), count));
                        wake_mask[par ^ 1].set(nb);
                    }
                }
            }
        }

        // 3b. Purge packets that lost a flit at the emission guard: sweep
        // their remaining flits out of wires and node buffers so the fault
        // leaves no stranded state (runs before phase 4 so the occupancy
        // refresh below sees post-purge node state).
        let pend = match &mut self.faults {
            Some(f) if !f.pending_lost.is_empty() => std::mem::take(&mut f.pending_lost),
            _ => Vec::new(),
        };
        for pid in pend {
            if self.register_lost(pid) {
                self.purge_lost_packet(now, pid);
            }
        }

        // 4. Refresh caches for the stepped nodes, collect deliveries, make
        // sleep decisions, and integrate leakage from the running sums.
        // Power state and occupancy can only change in a stepped cycle, so
        // updating stepped nodes keeps the sums exact for sleepers too.
        self.scratch_delivered.clear();
        let mut stepped = 0u64;
        for w in 0..words {
            let mut bits = self.step_mask.words()[w];
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                stepped += 1;
                if let Some(t) = &mut self.telemetry {
                    // A sleeping node only steps again once something woke
                    // it: record the wake edge.
                    if t.asleep[i] {
                        t.asleep[i] = false;
                        t.sink.record(now, i as u32, EventKind::NodeWake, 0, 0);
                    }
                }
                let node = &mut self.nodes[i];
                node.drain_delivered(&mut self.scratch_delivered);
                let occ = node.occupancy();
                self.total_occ = self.total_occ - self.occ_cache[i] + occ;
                self.occ_cache[i] = occ;
                let ps = node.power_state();
                let old = self.power_cache[i];
                self.power_cache[i] = ps;
                self.leak_buffer =
                    self.leak_buffer - old.buffer_slots as u64 + ps.buffer_slots as u64;
                self.leak_slot = self.leak_slot - old.slot_entries as u64 + ps.slot_entries as u64;
                self.leak_dlt = self.leak_dlt - old.dlt_entries as u64 + ps.dlt_entries as u64;
                match node.sleep_until(now) {
                    // `t <= now + 1` is "wake next cycle": same as active.
                    None => self.active_mask.set(i),
                    Some(t) if t <= now + 1 => self.active_mask.set(i),
                    Some(t) => {
                        self.active_mask.clear(i);
                        if let Some(tel) = &mut self.telemetry {
                            if !tel.asleep[i] {
                                tel.asleep[i] = true;
                                tel.sink.record(now, i as u32, EventKind::NodeSleep, 0, t);
                            }
                        }
                        if t != Cycle::MAX && t < self.timer_at[i] {
                            self.timer_at[i] = t;
                            self.timers.push(Reverse((t, i as u32)));
                        }
                    }
                }
            }
        }
        self.stats.leakage.buffer_slot_cycles += self.leak_buffer;
        self.stats.leakage.slot_entry_cycles += self.leak_slot;
        self.stats.leakage.dlt_entry_cycles += self.leak_dlt;
        self.stats.leakage.router_cycles += n as u64;
        self.stats.nodes_stepped += stepped;
        self.stats.node_cycles += n as u64;
        for d in &self.scratch_delivered {
            self.stats.record_delivery(d);
            if self.collect_delivered && d.measured && d.class == MsgClass::Data {
                self.delivered_log.push(*d);
            }
        }
        if let Some(t) = &mut self.telemetry {
            for d in &self.scratch_delivered {
                if d.measured && d.class == MsgClass::Data {
                    t.registry.add(t.m_packets_delivered, 1);
                    t.registry.add(t.m_flits_delivered, d.len_flits as u64);
                    t.registry
                        .observe(t.m_latency, d.delivered.saturating_sub(d.created));
                }
            }
            if now + 1 >= t.next_window {
                t.registry
                    .set(t.m_active_nodes, self.active_mask.count_ones());
                t.registry.set(t.m_buffered_flits, self.total_occ as u64);
                t.registry
                    .set(t.m_inflight_flits, self.inflight_flits as u64);
                t.registry.snapshot_window(now + 1);
                t.last_window_end = now + 1;
                t.next_window += t.cfg.window;
            }
        }

        self.now += 1;
    }

    /// Run `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// True when no node is scheduled and no wire delivery is pending for
    /// either parity — i.e. every cycle until the next timer (or external
    /// injection) is a guaranteed no-op.
    fn is_idle(&self) -> bool {
        self.active_mask.is_empty() && self.wake_mask[0].is_empty() && self.wake_mask[1].is_empty()
    }

    /// Advance the clock to `target`, leaping over provably empty cycles.
    ///
    /// When the active set and both wake parities are empty, the wire
    /// slots are empty too (every wire push sets a wake bit), so each
    /// cycle until the earliest pending timer is a no-op apart from the
    /// O(1) integrations [`Network::step`] performs unconditionally:
    /// leakage sums, per-cycle counters and telemetry window snapshots.
    /// [`Network::run_until`] replays exactly those for the skipped span
    /// and jumps the clock, making the result bit-identical to stepping
    /// cycle by cycle (pinned by `tests/properties.rs`) at O(1) cost per
    /// leap instead of O(cycles). With [`Network::set_always_step`] the
    /// leap is disabled and every cycle is stepped.
    pub fn run_until(&mut self, target: Cycle) {
        while self.now < target {
            if !self.always_step && self.is_idle() {
                let mut bound = match self.timers.peek() {
                    Some(&Reverse((t, _))) => t.min(target),
                    None => target,
                };
                // Never leap past a scheduled fault event: the kill/revive
                // must be applied at its exact cycle.
                if let Some(t) = self.next_fault_at() {
                    bound = bound.min(t);
                }
                // `bound <= now` means a (possibly stale) timer or a due
                // fault: fall through and let `step` service it.
                if bound > self.now {
                    self.leap_to(bound);
                    continue;
                }
            }
            self.step();
        }
    }

    /// Replay `self.now..target` as empty cycles in O(1).
    fn leap_to(&mut self, target: Cycle) {
        debug_assert!(self.inflight_flits == 0, "leap with flits in flight");
        let k = target - self.now;
        let n = self.nodes.len() as u64;
        self.stats.leakage.buffer_slot_cycles += self.leak_buffer * k;
        self.stats.leakage.slot_entry_cycles += self.leak_slot * k;
        self.stats.leakage.dlt_entry_cycles += self.leak_dlt * k;
        self.stats.leakage.router_cycles += n * k;
        self.stats.node_cycles += n * k;
        if let Some(t) = &mut self.telemetry {
            // Window boundaries inside the leap snapshot the same gauge
            // values a per-cycle walk would have seen: nothing active,
            // nothing in flight, occupancy frozen.
            while t.next_window <= target {
                t.registry.set(t.m_active_nodes, 0);
                t.registry.set(t.m_buffered_flits, self.total_occ as u64);
                t.registry
                    .set(t.m_inflight_flits, self.inflight_flits as u64);
                t.registry.snapshot_window(t.next_window);
                t.last_window_end = t.next_window;
                t.next_window += t.cfg.window;
            }
        }
        self.now = target;
    }

    /// Start a measurement window: resets statistics and snapshots event
    /// counters so [`Network::end_measurement`] reports window deltas.
    pub fn begin_measurement(&mut self) {
        self.stats.begin_measurement(self.now);
        self.events_baseline = self.total_events();
    }

    /// Close the measurement window: fixes `measured_cycles` and stores the
    /// event-counter delta in `stats.events`.
    pub fn end_measurement(&mut self) {
        self.stats.end_measurement(self.now);
        self.stats.events = self.total_events().diff(&self.events_baseline);
    }

    /// Sum of all node event counters since construction.
    pub fn total_events(&self) -> EnergyEvents {
        let mut e = EnergyEvents::default();
        for node in &self.nodes {
            let ne = node.events();
            e.merge(&ne);
        }
        e
    }

    /// True when no flit is buffered anywhere and no wire is in flight.
    /// O(1): maintained incrementally by the step loop.
    pub fn is_drained(&self) -> bool {
        debug_assert_eq!(
            self.total_occ,
            self.nodes.iter().map(|n| n.occupancy()).sum::<usize>(),
            "network occupancy counter drifted"
        );
        debug_assert_eq!(
            self.inflight_flits,
            self.flit_slots
                .iter()
                .flat_map(|s| s.iter())
                .map(|w| w.len())
                .sum::<usize>(),
            "in-flight flit counter drifted"
        );
        self.total_occ == 0 && self.inflight_flits == 0
    }

    /// Step until drained or `max_cycles` elapse; returns whether the
    /// network drained.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_drained() {
                return true;
            }
            self.step();
        }
        self.is_drained()
    }

    /// Total flits held by nodes (saturation detection). O(1): maintained
    /// incrementally by the step loop.
    pub fn total_occupancy(&self) -> usize {
        self.total_occ
    }

    /// Force the harness to step every node every cycle, disabling the
    /// activity scheduler. The simulated network is bit-identical either
    /// way (the bit-identity property tests run both modes side by side);
    /// only wall-clock cost and the `nodes_stepped` counter differ.
    pub fn set_always_step(&mut self, on: bool) {
        self.always_step = on;
    }

    /// Whether the activity scheduler is disabled.
    pub fn always_step(&self) -> bool {
        self.always_step
    }

    /// Mark every node active and re-derive the occupancy and power caches
    /// from node state. Must be called after mutating nodes from outside
    /// the harness (resize controllers, tests poking `nodes` directly), so
    /// the scheduler never acts on stale cached state.
    /// Override the phase-2 node-stepping order (test-only; `exhaustive`
    /// feature). `order` must be a permutation of `0..n`; the step *set*
    /// is unchanged — only the visit order differs. Phase 2 is
    /// order-independent by contract, so every permutation must be
    /// observationally equivalent to the canonical ascending order; the
    /// exhaustive-schedule test enumerates all of them on a 2×2 fabric.
    /// Ignored by the worker-pool path (serial stepping only).
    #[cfg(feature = "exhaustive")]
    pub fn set_step_order(&mut self, order: Option<Vec<usize>>) {
        if let Some(order) = &order {
            let n = self.nodes.len();
            assert!(self.pool.is_none(), "step order override is serial-only");
            assert_eq!(order.len(), n, "order must cover every node");
            let mut seen = vec![false; n];
            for &i in order {
                assert!(!std::mem::replace(&mut seen[i], true), "duplicate {i}");
            }
        }
        self.step_order = order;
    }

    pub fn wake_all(&mut self) {
        let n = self.nodes.len();
        self.active_mask.set_all();
        self.total_occ = 0;
        self.leak_buffer = 0;
        self.leak_slot = 0;
        self.leak_dlt = 0;
        for i in 0..n {
            let occ = self.nodes[i].occupancy();
            self.occ_cache[i] = occ;
            self.total_occ += occ;
            let ps = self.nodes[i].power_state();
            self.power_cache[i] = ps;
            self.leak_buffer += ps.buffer_slots as u64;
            self.leak_slot += ps.slot_entries as u64;
            self.leak_dlt += ps.dlt_entries as u64;
        }
    }

    /// Arm telemetry: install a fresh ring sink in every node (via
    /// [`NodeModel::set_trace_sink`]) and reset the harness-level event
    /// sink, link counters and metrics registry. Telemetry only observes —
    /// the simulated network evolves bit-identically traced or not.
    pub fn configure_telemetry(&mut self, cfg: &TelemetryConfig) {
        for node in &mut self.nodes {
            node.set_trace_sink(TraceSink::ring(cfg));
        }
        self.telemetry = Some(Box::new(NetTelemetry::new(cfg, self.nodes.len(), self.now)));
    }

    /// Disarm telemetry and assemble the report: drain every node's ring
    /// (leaving the sinks disabled), merge with the harness events, flush
    /// the final partial metrics window, and sort the merged event stream
    /// into canonical order. `None` when telemetry was never armed.
    pub fn take_telemetry(&mut self) -> Option<TelemetryReport> {
        let mut t = self.telemetry.take()?;
        if t.cfg.window > 0 && self.now > t.last_window_end {
            t.registry.snapshot_window(self.now);
        }
        let mut report = TelemetryReport {
            nodes: self.nodes.len() as u32,
            mesh_width: self.mesh.kx() as u32,
            link_flits: std::mem::take(&mut t.link_flits),
            ..Default::default()
        };
        let mut rings: Vec<_> = self
            .nodes
            .iter_mut()
            .filter_map(|n| n.take_trace())
            .collect();
        rings.extend(t.sink.take());
        for ring in &rings {
            report.recorded += ring.recorded();
            report.dropped += ring.dropped();
            report.events.extend(ring.events().copied());
        }
        report.registry = t.registry;
        report.sort_events();
        Some(report)
    }

    /// Number of closed metrics windows recorded so far. Non-destructive
    /// (telemetry stays armed), so a live run's harness can poll this once
    /// per cycle and stream the new windows to subscribers as they close.
    pub fn telemetry_window_count(&self) -> usize {
        self.telemetry
            .as_deref()
            .map_or(0, |t| t.registry.windows.len())
    }

    /// Clone the closed metrics windows from index `from` on (empty when
    /// telemetry is unarmed or nothing new closed). Pair with
    /// [`Network::telemetry_metric_names`] to label the value columns.
    pub fn telemetry_windows_from(&self, from: usize) -> Vec<WindowSnapshot> {
        self.telemetry.as_deref().map_or_else(Vec::new, |t| {
            t.registry.windows.get(from..).unwrap_or(&[]).to_vec()
        })
    }

    /// Registration-order metric names of the armed registry (empty when
    /// telemetry is unarmed).
    pub fn telemetry_metric_names(&self) -> Vec<String> {
        self.telemetry
            .as_deref()
            .map_or_else(Vec::new, |t| t.registry.names().to_vec())
    }

    // --- Link faults (see `FaultState`) ---

    /// Arm a link-fault schedule. Each event names one *physical* link by
    /// its (node, direction) endpoint; kills and revives affect both
    /// directions. Events may be given in any order; they are applied at
    /// their exact cycle with a deterministic tie-break. Panics if an
    /// event names a non-existent link (off the edge of an open mesh).
    pub fn set_faults(&mut self, mut timeline: Vec<FaultEvent>) {
        timeline.sort_by_key(|e| (e.at, e.node, e.dir.index(), e.up));
        for ev in &timeline {
            assert!(
                (ev.node as usize) < self.nodes.len()
                    && self.tables.neighbor(ev.node as usize, ev.dir).is_some(),
                "fault event names a non-existent link: node {} {:?}",
                ev.node,
                ev.dir
            );
        }
        let n = self.nodes.len();
        self.faults = Some(Box::new(FaultState {
            timeline,
            next: 0,
            down: vec![false; n * 4].into_boxed_slice(),
            down_count: 0,
            overrides: None,
            lost: Vec::new(),
            pending_lost: Vec::new(),
        }));
    }

    /// Cycle of the next unapplied fault event, if any (leap barrier;
    /// public so wrapping controllers can bound their own leaps to land
    /// just after a fault and observe it at the same cycle as per-cycle
    /// stepping would).
    pub fn next_fault_at(&self) -> Option<Cycle> {
        let f = self.faults.as_deref()?;
        f.timeline.get(f.next).map(|e| e.at)
    }

    /// Number of directed links currently down.
    pub fn links_down(&self) -> usize {
        self.faults.as_deref().map_or(0, |f| f.down_count)
    }

    /// Fault-timeline events applied so far. Monotonic (unlike the
    /// `NetStats` fault counters, which measurement windows reset), so
    /// wrapping repair controllers can trigger off it reliably.
    pub fn faults_applied(&self) -> usize {
        self.faults.as_deref().map_or(0, |f| f.next)
    }

    /// Apply every fault event due at `now`, then purge the packets that
    /// lost flits on killed wires and refresh the reroute table.
    fn apply_due_faults(&mut self, now: Cycle) {
        let mut changed = false;
        let mut wire_lost: Vec<PacketId> = Vec::new();
        loop {
            let ev = {
                let f = self.faults.as_deref().expect("fault state present");
                match f.timeline.get(f.next) {
                    Some(e) if e.at <= now => *e,
                    _ => break,
                }
            };
            let i = ev.node as usize;
            let nb = self
                .tables
                .neighbor(i, ev.dir)
                .expect("validated by set_faults");
            let fwd = i * 4 + ev.dir.index();
            let rev = nb * 4 + ev.dir.opposite().index();
            let f = self.faults.as_deref_mut().expect("fault state present");
            f.next += 1;
            // Flag flips are idempotent: a kill of an already-dead link (or
            // a revive of a live one) is a silent no-op, so overlapping
            // schedules stay well defined.
            let mut flipped = false;
            for idx in [fwd, rev] {
                if f.down[idx] == ev.up {
                    f.down[idx] = !ev.up;
                    if ev.up {
                        f.down_count -= 1;
                    } else {
                        f.down_count += 1;
                    }
                    flipped = true;
                }
            }
            if !flipped {
                continue;
            }
            changed = true;
            if ev.up {
                self.stats.link_up_events += 1;
            } else {
                self.stats.link_down_events += 1;
            }
            if let Some(t) = &mut self.telemetry {
                let kind = if ev.up {
                    EventKind::LinkUp
                } else {
                    EventKind::LinkDown
                };
                t.sink.record(now, ev.node, kind, ev.dir.index() as u8, 0);
            }
            if !ev.up {
                // Flits already in flight on either direction of the wire
                // are lost with it.
                self.purge_wire_link(now, i, ev.dir, &mut wire_lost);
                self.purge_wire_link(now, nb, ev.dir.opposite(), &mut wire_lost);
            }
        }
        for pid in wire_lost {
            if self.register_lost(pid) {
                self.purge_lost_packet(now, pid);
            }
        }
        if changed {
            self.rebuild_overrides();
            // Topology change: every node must re-evaluate routes, retries
            // and sleep decisions against fresh state.
            self.wake_all();
        }
    }

    /// Drop every in-flight flit travelling from `i` toward `dir`,
    /// refunding the emitter's buffer credit for packet-switched flits and
    /// recording the owning packets in `lost`.
    fn purge_wire_link(&mut self, now: Cycle, i: usize, dir: Direction, lost: &mut Vec<PacketId>) {
        let Some(nb) = self.tables.neighbor(i, dir) else {
            return;
        };
        let from = dir.opposite();
        let par_next = ((now + 1) & 1) as usize;
        for par in 0..2 {
            let mut k = 0;
            while k < self.flit_slots[par][nb].len() {
                if self.flit_slots[par][nb][k].0 != from {
                    k += 1;
                    continue;
                }
                let (_, f) = self.flit_slots[par][nb].remove(k);
                self.arena.free(f.config);
                self.inflight_flits -= 1;
                self.stats.flits_dropped_fault += 1;
                if f.switching() == Switching::Packet {
                    self.credit_slots[par_next][i].push((dir, Credit { vc: f.vc }));
                    self.wake_mask[par_next].set(i);
                }
                if let Some(t) = &mut self.telemetry {
                    t.sink.record(
                        now,
                        nb as u32,
                        EventKind::FlitDroppedFault,
                        from.index() as u8,
                        f.packet.0,
                    );
                }
                lost.push(f.packet);
            }
        }
    }

    /// Record `pid` as lost to a fault. Returns `false` when the packet was
    /// already purged (each lost packet is swept and counted exactly once).
    fn register_lost(&mut self, pid: PacketId) -> bool {
        let f = self.faults.as_deref_mut().expect("fault state present");
        match f.lost.binary_search(&pid.0) {
            Ok(_) => false,
            Err(pos) => {
                f.lost.insert(pos, pid.0);
                self.stats.packets_dropped_fault += 1;
                true
            }
        }
    }

    /// Globally purge a packet that lost a flit: sweep its stragglers off
    /// every wire and out of every node (buffers, VC state, partial
    /// reassembly), freeing config payloads and refunding buffer credits so
    /// the fault leaves no stranded occupancy and no arena leak.
    fn purge_lost_packet(&mut self, now: Cycle, pid: PacketId) {
        let par_next = ((now + 1) & 1) as usize;
        let n = self.nodes.len();
        for par in 0..2 {
            for j in 0..n {
                let mut k = 0;
                while k < self.flit_slots[par][j].len() {
                    if self.flit_slots[par][j][k].1.packet != pid {
                        k += 1;
                        continue;
                    }
                    let (from, f) = self.flit_slots[par][j].remove(k);
                    self.arena.free(f.config);
                    self.inflight_flits -= 1;
                    self.stats.flits_dropped_fault += 1;
                    if f.switching() == Switching::Packet {
                        // The sender sits upstream of input port `from`.
                        if let Some(s) = self.tables.neighbor(j, from) {
                            self.credit_slots[par_next][s]
                                .push((from.opposite(), Credit { vc: f.vc }));
                            self.wake_mask[par_next].set(s);
                        }
                    }
                    if let Some(t) = &mut self.telemetry {
                        t.sink.record(
                            now,
                            j as u32,
                            EventKind::FlitDroppedFault,
                            from.index() as u8,
                            f.packet.0,
                        );
                    }
                }
            }
        }
        let mut credits: Vec<(Direction, Credit)> = Vec::new();
        for i in 0..n {
            credits.clear();
            let dropped = self.nodes[i].abort_packet(pid, &self.arena, &mut credits);
            for &(dir, c) in &credits {
                if let Some(nb) = self.tables.neighbor(i, dir) {
                    self.credit_slots[par_next][nb].push((dir.opposite(), c));
                    self.wake_mask[par_next].set(nb);
                }
            }
            if dropped > 0 {
                self.stats.flits_dropped_fault += dropped as u64;
                let occ = self.nodes[i].occupancy();
                self.total_occ = self.total_occ - self.occ_cache[i] + occ;
                self.occ_cache[i] = occ;
                // Step the node next cycle so its power cache and sleep
                // decision are refreshed against post-purge state.
                self.active_mask.set(i);
            }
        }
    }

    /// Recompute the reroute table from the current down flags and install
    /// it in every node (or clear it once all links are back up). Routes
    /// are minimal-hop over the surviving links, built by one BFS per
    /// destination with a deterministic direction-order tie-break.
    fn rebuild_overrides(&mut self) {
        let n = self.nodes.len();
        let f = self.faults.as_deref_mut().expect("fault state present");
        if f.down_count == 0 {
            f.overrides = None;
            for node in &mut self.nodes {
                node.set_route_overrides(None);
            }
            return;
        }
        let mut next = vec![RouteOverrides::NO_ROUTE; n * n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for dst in 0..n {
            visited.iter_mut().for_each(|v| *v = false);
            visited[dst] = true;
            queue.clear();
            queue.push_back(dst);
            while let Some(v) = queue.pop_front() {
                for d in Direction::ALL {
                    let Some(u) = self.tables.neighbor(v, d) else {
                        continue;
                    };
                    // `u` reaches `v` by leaving in the opposite direction
                    // (links are symmetric, wrap links included).
                    let out = d.opposite();
                    debug_assert_eq!(self.tables.neighbor(u, out), Some(v));
                    if visited[u] || f.down[u * 4 + out.index()] {
                        continue;
                    }
                    visited[u] = true;
                    next[u * n + dst] = out.index() as u8;
                    queue.push_back(u);
                }
            }
        }
        let ovr = Arc::new(RouteOverrides::new(n as u32, next.into_boxed_slice()));
        f.overrides = Some(ovr.clone());
        for node in &mut self.nodes {
            node.set_route_overrides(Some(ovr.clone()));
        }
    }

    // --- Checkpoint / restore (see DESIGN.md §14) ---

    /// Serialise the harness and every node into a framed snapshot.
    /// Fails while telemetry is armed (ring sinks and registry windows are
    /// deliberately outside the snapshot seam — disarm via
    /// [`Network::take_telemetry`] first).
    pub fn checkpoint(&self) -> Result<FabricSnapshot, SnapshotError> {
        let mut w = SnapshotWriter::new();
        self.save_into(&mut w)?;
        Ok(FabricSnapshot::from_payload(w.into_bytes()))
    }

    /// Restore from a snapshot taken by [`Network::checkpoint`] on a
    /// network built from the *same* configuration (geometry mismatches are
    /// rejected). The restored network continues bit-identically to the
    /// one that was checkpointed.
    pub fn restore(&mut self, snap: &FabricSnapshot) -> Result<(), SnapshotError> {
        let mut r = snap.payload();
        self.load_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Corrupt("trailing bytes after snapshot"));
        }
        Ok(())
    }

    /// Append the harness state to `w`. Composable seam: fabric wrappers
    /// (the TDM resize controller, the SDM backend) call this and then
    /// append their own state.
    ///
    /// Not serialised: scratch buffers (outboxes, step mask), the worker
    /// pool, the topology tables (structural, rebuilt by the constructor),
    /// the reroute table (recomputed from the down flags on load), and
    /// telemetry (must be disarmed).
    pub fn save_into(&self, w: &mut SnapshotWriter) -> Result<(), SnapshotError> {
        if self.telemetry.is_some() {
            return Err(SnapshotError::Unsupported(
                "checkpoint while telemetry is armed",
            ));
        }
        w.u64(self.now);
        w.bool(self.always_step);
        w.bool(self.collect_delivered);
        self.delivered_log.save(w);
        self.stats.save(w);
        self.events_baseline.save(w);
        for slots in &self.flit_slots {
            slots.save(w);
        }
        for slots in &self.credit_slots {
            slots.save(w);
        }
        for slots in &self.vc_count_slots {
            slots.save(w);
        }
        self.active_mask.save(w);
        self.wake_mask[0].save(w);
        self.wake_mask[1].save(w);
        // The heap's internal layout is iteration-order dependent; encode
        // the sorted entry list so equal states produce equal bytes.
        let mut timers: Vec<(u64, u32)> = self.timers.iter().map(|r| r.0).collect();
        timers.sort_unstable();
        timers.save(w);
        self.timer_at.save(w);
        self.occ_cache.save(w);
        w.usize(self.total_occ);
        w.usize(self.inflight_flits);
        self.power_cache.save(w);
        w.u64(self.leak_buffer);
        w.u64(self.leak_slot);
        w.u64(self.leak_dlt);
        self.arena.save_state(w);
        match self.faults.as_deref() {
            None => w.bool(false),
            Some(f) => {
                w.bool(true);
                debug_assert!(f.pending_lost.is_empty(), "snapshot mid-step");
                f.timeline.save(w);
                w.usize(f.next);
                f.down.save(w);
                w.usize(f.down_count);
                f.lost.save(w);
            }
        }
        w.usize(self.nodes.len());
        for node in &self.nodes {
            node.save_state(w)?;
        }
        Ok(())
    }

    /// Inverse of [`Network::save_into`].
    pub fn load_from(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        if self.telemetry.is_some() {
            return Err(SnapshotError::Unsupported(
                "restore while telemetry is armed",
            ));
        }
        let n = self.nodes.len();
        self.now = r.u64()?;
        self.always_step = r.bool()?;
        self.collect_delivered = r.bool()?;
        self.delivered_log = Vec::load(r)?;
        self.stats = NetStats::load(r)?;
        self.events_baseline = EnergyEvents::load(r)?;
        fn wire<T: Snap>(
            r: &mut SnapshotReader,
            n: usize,
        ) -> Result<Vec<Vec<(Direction, T)>>, SnapshotError> {
            let slots = Vec::<Vec<(Direction, T)>>::load(r)?;
            if slots.len() != n {
                return Err(SnapshotError::Mismatch("wire slot count"));
            }
            Ok(slots)
        }
        for par in 0..2 {
            self.flit_slots[par] = wire::<Flit>(r, n)?;
        }
        for par in 0..2 {
            self.credit_slots[par] = wire::<Credit>(r, n)?;
        }
        for par in 0..2 {
            self.vc_count_slots[par] = wire::<u8>(r, n)?;
        }
        let words = self.step_mask.words().len();
        let mask = |r: &mut SnapshotReader| -> Result<BitSet, SnapshotError> {
            let m = BitSet::load(r)?;
            if m.words().len() != words {
                return Err(SnapshotError::Mismatch("activity mask width"));
            }
            Ok(m)
        };
        self.active_mask = mask(r)?;
        self.wake_mask[0] = mask(r)?;
        self.wake_mask[1] = mask(r)?;
        let timers = Vec::<(u64, u32)>::load(r)?;
        if timers.iter().any(|&(_, i)| i as usize >= n) {
            return Err(SnapshotError::Mismatch("timer node index"));
        }
        self.timers = timers.into_iter().map(Reverse).collect();
        self.timer_at = Vec::load(r)?;
        self.occ_cache = Vec::load(r)?;
        if self.timer_at.len() != n || self.occ_cache.len() != n {
            return Err(SnapshotError::Mismatch("per-node table length"));
        }
        self.total_occ = r.usize()?;
        self.inflight_flits = r.usize()?;
        self.power_cache = Vec::load(r)?;
        if self.power_cache.len() != n {
            return Err(SnapshotError::Mismatch("per-node table length"));
        }
        self.leak_buffer = r.u64()?;
        self.leak_slot = r.u64()?;
        self.leak_dlt = r.u64()?;
        self.arena.load_state(r)?;
        self.faults = if r.bool()? {
            let timeline = Vec::load(r)?;
            let next = r.usize()?;
            let down = Box::<[bool]>::load(r)?;
            let down_count = r.usize()?;
            let lost = Vec::load(r)?;
            if down.len() != n * 4 || next > timeline.len() {
                return Err(SnapshotError::Mismatch("fault state shape"));
            }
            Some(Box::new(FaultState {
                timeline,
                next,
                down,
                down_count,
                overrides: None,
                lost,
                pending_lost: Vec::new(),
            }))
        } else {
            None
        };
        if r.usize()? != n {
            return Err(SnapshotError::Mismatch("node count"));
        }
        for node in &mut self.nodes {
            node.load_state(r)?;
        }
        // Reinstall the reroute table from the restored down flags (or
        // clear any stale one). Deliberately no `wake_all`: the restored
        // activity masks and caches already match the checkpointed run, and
        // waking everything would perturb `nodes_stepped`.
        if self.faults.is_some() {
            self.rebuild_overrides();
        } else {
            for node in &mut self.nodes {
                node.set_route_overrides(None);
            }
        }
        Ok(())
    }
}

impl<N: NodeModel + Send + 'static> Network<N> {
    /// Fan the node-stepping phase over `threads` persistent worker
    /// threads (`0` restores serial stepping). Results are bit-identical
    /// either way — see the determinism contract in the module docs.
    pub fn set_step_threads(&mut self, threads: usize) {
        self.pool = None;
        if threads == 0 {
            return;
        }
        let threads = threads.min(self.nodes.len().max(1));
        let (done_tx, done_rx) = mpsc::channel();
        let mut job_txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel::<StepJob<N>>();
            let done = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    // Safety: this worker has exclusive access to indices
                    // `lo..hi` of both vectors until it reports completion,
                    // and the step mask is not mutated while jobs are in
                    // flight (see `StepJob`).
                    unsafe {
                        for k in job.lo..job.hi {
                            if *job.mask.add(k / 64) >> (k % 64) & 1 == 0 {
                                continue;
                            }
                            let node = &mut *job.nodes.add(k);
                            let out = &mut *job.outs.add(k);
                            out.clear();
                            node.step(job.now, out);
                        }
                    }
                    if done.send(()).is_err() {
                        break;
                    }
                }
            }));
            job_txs.push(tx);
        }
        self.pool = Some(StepPool {
            job_txs,
            done_rx,
            handles,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::flit::{PacketId, Switching};
    use crate::geometry::Coord;
    use crate::node::{PacketNode, PowerState};

    fn net(k: u16) -> Network<PacketNode> {
        let cfg = NetworkConfig::with_mesh(Mesh::square(k));
        Network::new(cfg.mesh, |id| PacketNode::new(id, &cfg, None))
    }

    #[test]
    fn single_packet_crosses_network() {
        let mut n = net(4);
        let src = n.mesh.id(Coord::new(0, 0));
        let dst = n.mesh.id(Coord::new(3, 3));
        n.begin_measurement();
        n.inject(src, Packet::data(PacketId(1), src, dst, 5, 0));
        assert!(n.drain(500), "packet must be delivered");
        n.end_measurement();
        assert_eq!(n.stats.packets_delivered, 1);
        assert_eq!(n.stats.flits_delivered, 5);
        // 6 hops at 4 cycles each plus serialisation and interface costs:
        // zero-load latency must be positive and modest.
        let lat = n.stats.avg_latency();
        assert!(
            lat > 24.0 && lat < 60.0,
            "unexpected zero-load latency {lat}"
        );
    }

    #[test]
    fn latency_includes_source_queueing() {
        let mut fast = net(4);
        let mut slow = net(4);
        let src = fast.mesh.id(Coord::new(0, 0));
        let dst = fast.mesh.id(Coord::new(3, 0));
        fast.begin_measurement();
        slow.begin_measurement();
        // One packet alone vs. ten packets queued at once: the tenth waits.
        fast.inject(src, Packet::data(PacketId(0), src, dst, 5, 0));
        for i in 0..10 {
            slow.inject(src, Packet::data(PacketId(i), src, dst, 5, 0));
        }
        assert!(fast.drain(1000) && slow.drain(1000));
        fast.end_measurement();
        slow.end_measurement();
        assert!(slow.stats.avg_latency() > fast.stats.avg_latency() + 5.0);
        assert_eq!(slow.stats.packets_delivered, 10);
    }

    #[test]
    fn all_pairs_deliver() {
        let mut n = net(3);
        let mut pid = 0;
        for src in n.mesh.nodes() {
            for dst in n.mesh.nodes() {
                if src != dst {
                    n.inject(src, Packet::data(PacketId(pid), src, dst, 5, 0));
                    pid += 1;
                }
            }
        }
        n.begin_measurement();
        assert!(n.drain(20_000), "network failed to drain");
        n.end_measurement();
        assert_eq!(n.stats.packets_delivered, pid);
    }

    #[test]
    fn leakage_integrates_every_cycle() {
        let mut n = net(2);
        n.begin_measurement();
        n.run(10);
        n.end_measurement();
        assert_eq!(n.stats.leakage.router_cycles, 40);
        // 4 routers × 5 ports × 4 VCs × 5 slots × 10 cycles
        assert_eq!(n.stats.leakage.buffer_slot_cycles, 4 * 5 * 4 * 5 * 10);
    }

    #[test]
    fn events_window_excludes_warmup() {
        let mut n = net(3);
        let src = n.mesh.id(Coord::new(0, 0));
        let dst = n.mesh.id(Coord::new(2, 2));
        n.inject(src, Packet::data(PacketId(0), src, dst, 5, 0));
        n.drain(500);
        let warm = n.total_events();
        assert!(warm.buffer_writes > 0);
        n.begin_measurement();
        n.run(5);
        n.end_measurement();
        assert_eq!(
            n.stats.events.buffer_writes, 0,
            "warm-up events leaked into window"
        );
    }

    /// Minimal instrumented tile for the wire-timing tests: emits one
    /// pre-programmed signal of each kind eastward and records the cycle
    /// each inbound signal arrives.
    struct Probe {
        id: NodeId,
        emit_flit_at: Option<Cycle>,
        emit_credit_at: Option<Cycle>,
        emit_vc_count_at: Option<Cycle>,
        arrivals: Vec<(Cycle, &'static str)>,
    }

    impl Probe {
        fn new(id: NodeId) -> Self {
            Probe {
                id,
                emit_flit_at: None,
                emit_credit_at: None,
                emit_vc_count_at: None,
                arrivals: Vec::new(),
            }
        }
    }

    impl NodeModel for Probe {
        fn id(&self) -> NodeId {
            self.id
        }
        fn inject(&mut self, _now: Cycle, _pkt: Packet) {}
        fn accept_flit(&mut self, now: Cycle, _from: Direction, _flit: Flit) {
            self.arrivals.push((now, "flit"));
        }
        fn accept_credit(&mut self, now: Cycle, _from: Direction, _credit: Credit) {
            self.arrivals.push((now, "credit"));
        }
        fn accept_vc_count(&mut self, now: Cycle, _from: Direction, _count: u8) {
            self.arrivals.push((now, "vc_count"));
        }
        fn step(&mut self, now: Cycle, out: &mut NodeOutputs) {
            if self.emit_flit_at == Some(now) {
                let p = Packet::data(PacketId(1), self.id, self.id, 1, now);
                out.flits
                    .push((Direction::East, Flit::of_packet(&p, 0, Switching::Packet)));
            }
            if self.emit_credit_at == Some(now) {
                out.credits.push((Direction::East, Credit { vc: 0 }));
            }
            if self.emit_vc_count_at == Some(now) {
                out.vc_counts.push((Direction::East, 2));
            }
        }
        fn drain_delivered(&mut self, _sink: &mut Vec<DeliveredPacket>) {}
        fn events(&self) -> EnergyEvents {
            EnergyEvents::default()
        }
        fn occupancy(&self) -> usize {
            0
        }
        fn power_state(&self) -> PowerState {
            PowerState::default()
        }
    }

    /// The ring-slot wires must preserve the timing contract exactly: a
    /// flit emitted during `step(T)` arrives at `T+2`; credits and VC
    /// counts arrive at `T+1`.
    #[test]
    fn ring_wires_keep_fixed_latencies() {
        let m = Mesh::new(2, 1);
        let mut n = Network::new(m, |id| {
            let mut p = Probe::new(id);
            if id.index() == 0 {
                p.emit_flit_at = Some(3);
                p.emit_credit_at = Some(4);
                p.emit_vc_count_at = Some(6);
            }
            p
        });
        n.run(10);
        assert_eq!(
            n.nodes[1].arrivals,
            vec![(5, "flit"), (5, "credit"), (7, "vc_count")]
        );
        assert!(n.nodes[0].arrivals.is_empty());
    }

    /// Back-to-back emissions on consecutive cycles land on consecutive
    /// cycles: the two parity slots never collide or coalesce.
    #[test]
    fn ring_wires_double_buffer_consecutive_cycles() {
        let m = Mesh::new(2, 1);
        for start in [0u64, 1] {
            let mut n = Network::new(m, Probe::new);
            n.run(start);
            // Emit a flit on every one of four consecutive cycles.
            for t in 0..4 {
                n.nodes[0].emit_flit_at = Some(start + t);
                n.step();
            }
            n.run(4);
            let got: Vec<Cycle> = n.nodes[1].arrivals.iter().map(|&(t, _)| t).collect();
            assert_eq!(got, vec![start + 2, start + 3, start + 4, start + 5]);
        }
    }

    #[test]
    fn traced_run_collects_events_counters_and_windows() {
        let mut n = net(3);
        n.configure_telemetry(&TelemetryConfig {
            window: 50,
            ..TelemetryConfig::default()
        });
        let src = n.mesh.id(Coord::new(0, 0));
        let dst = n.mesh.id(Coord::new(2, 2));
        n.begin_measurement();
        n.inject(src, Packet::data(PacketId(1), src, dst, 5, 0));
        assert!(n.drain(500));
        n.end_measurement();
        let link_flits_counted = n.stats.events.link_flits;
        let report = n.take_telemetry().expect("telemetry was armed");
        assert!(n.take_telemetry().is_none(), "report is taken once");

        // The harness per-link counters agree with the routers' own
        // link-flit event counter.
        assert_eq!(report.total_link_flits(), link_flits_counted);
        assert_eq!(report.link_flits.len(), 9 * 4);
        // Inject, sleep/wake (harness) and the flit lifecycle (routers)
        // all appear; the stream is sorted.
        let has = |k: EventKind| report.events.iter().any(|e| e.kind == k);
        assert!(has(EventKind::Inject));
        assert!(has(EventKind::VaGrant));
        assert!(has(EventKind::LinkTraverse));
        assert!(has(EventKind::Eject));
        assert!(has(EventKind::NodeSleep));
        assert!(report.events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        // Metrics: windows were snapshotted and the delivered counter is
        // in the registry totals.
        assert!(!report.registry.windows.is_empty());
        let names = report.registry.names();
        assert!(names.iter().any(|s| s == "packets_delivered"));
        // A second run traces wake edges for nodes slept mid-run.
        assert!(report.recorded > 0);
    }

    /// Tracing must be a pure observer: delivered-packet streams and stats
    /// are bit-identical with telemetry armed or absent.
    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        let build = |traced: bool| {
            let mut n = net(4);
            if traced {
                n.configure_telemetry(&TelemetryConfig::default());
            }
            n.collect_delivered = true;
            let mut pid = 0;
            for src in n.mesh.nodes() {
                for dst in n.mesh.nodes() {
                    if src != dst {
                        n.inject(src, Packet::data(PacketId(pid), src, dst, 5, 0));
                        pid += 1;
                    }
                }
            }
            n.begin_measurement();
            assert!(n.drain(20_000));
            n.end_measurement();
            n
        };
        let plain = build(false);
        let traced = build(true);
        assert_eq!(plain.now(), traced.now());
        assert_eq!(plain.delivered_log, traced.delivered_log);
        assert_eq!(plain.stats.latency_sum, traced.stats.latency_sum);
        assert_eq!(plain.stats.nodes_stepped, traced.stats.nodes_stepped);
    }

    /// `run_until` must be indistinguishable from stepping every cycle:
    /// same clock, same leakage integrals, same per-cycle counters, and
    /// the network must still react to work injected after the idle span.
    #[test]
    fn run_until_leaps_idle_regions_bit_identically() {
        let build = || {
            let mut n = net(4);
            let src = n.mesh.id(Coord::new(0, 0));
            let dst = n.mesh.id(Coord::new(3, 3));
            n.begin_measurement();
            n.inject(src, Packet::data(PacketId(1), src, dst, 5, 0));
            assert!(n.drain(500));
            n
        };
        let mut stepped = build();
        let mut leaped = build();
        let target = stepped.now() + 100_000;
        while stepped.now() < target {
            stepped.step();
        }
        leaped.run_until(target);
        assert_eq!(stepped.now(), leaped.now());
        assert_eq!(stepped.stats.leakage, leaped.stats.leakage);
        assert_eq!(stepped.stats.node_cycles, leaped.stats.node_cycles);
        assert_eq!(stepped.stats.nodes_stepped, leaped.stats.nodes_stepped);
        // The leaped network is still live: a new packet delivers.
        let src = leaped.mesh.id(Coord::new(3, 0));
        let dst = leaped.mesh.id(Coord::new(0, 3));
        leaped.inject(src, Packet::data(PacketId(2), src, dst, 5, leaped.now()));
        assert!(leaped.drain(500));
        leaped.end_measurement();
        assert_eq!(leaped.stats.packets_delivered, 2);
    }

    /// Serial and pooled stepping must advance the network identically.
    #[test]
    fn parallel_stepping_is_bit_identical() {
        let build = || {
            let mut n = net(4);
            let mut pid = 0;
            for src in n.mesh.nodes() {
                for dst in n.mesh.nodes() {
                    if src != dst {
                        n.inject(src, Packet::data(PacketId(pid), src, dst, 5, 0));
                        pid += 1;
                    }
                }
            }
            n.collect_delivered = true;
            n.begin_measurement();
            n
        };
        let mut serial = build();
        let mut pooled = build();
        pooled.set_step_threads(3);
        assert!(serial.drain(20_000) && pooled.drain(20_000));
        serial.end_measurement();
        pooled.end_measurement();
        assert_eq!(serial.now(), pooled.now());
        assert_eq!(serial.delivered_log, pooled.delivered_log);
        assert_eq!(
            serial.stats.packets_delivered,
            pooled.stats.packets_delivered
        );
        assert_eq!(serial.stats.latency_sum, pooled.stats.latency_sum);
    }
}
