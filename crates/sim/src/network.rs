//! The cycle-driven network harness: wires node models together with
//! 1-cycle links, delivers credits and advertisements, and integrates
//! leakage state.
//!
//! Wire timing: a flit emitted during `step(T)` finished switch traversal in
//! `T`, spends `T+1` on the link and is buffered at the neighbour at the
//! start of `T+2`; credits and VC-count advertisements travel on dedicated
//! wires and arrive at `T+1`. This gives circuit-switched flits the paper's
//! two-cycle per-hop latency (§II-D: a flit forwarded at `T` reaches the
//! downstream router at `T+2`).

use std::collections::VecDeque;

use crate::flit::{Credit, Flit, MsgClass, Packet};
use crate::geometry::{Direction, Mesh, NodeId};
use crate::node::{DeliveredPacket, NodeModel, NodeOutputs};
use crate::stats::{EnergyEvents, NetStats};
use crate::Cycle;

enum FastSignal {
    Credit(Direction, Credit),
    VcCount(Direction, u8),
}

/// A mesh network of `N` tiles.
pub struct Network<N: NodeModel> {
    pub mesh: Mesh,
    pub nodes: Vec<N>,
    /// Per-node inbound flit wires, ordered by delivery cycle.
    flit_wires: Vec<VecDeque<(Cycle, Direction, Flit)>>,
    /// Per-node inbound credit/advertisement wires.
    fast_wires: Vec<VecDeque<(Cycle, FastSignal)>>,
    now: Cycle,
    pub stats: NetStats,
    /// When set, every measured delivered packet is also appended to
    /// [`Network::delivered_log`] (per-class post-processing, e.g. separate
    /// CPU/GPU latencies for Figure 8).
    pub collect_delivered: bool,
    pub delivered_log: Vec<DeliveredPacket>,
    events_baseline: EnergyEvents,
    scratch_out: NodeOutputs,
    scratch_delivered: Vec<DeliveredPacket>,
}

impl<N: NodeModel> Network<N> {
    /// Build a network, constructing each tile with `make_node`.
    pub fn new(mesh: Mesh, mut make_node: impl FnMut(NodeId) -> N) -> Self {
        let n = mesh.len();
        Network {
            mesh,
            nodes: mesh.nodes().map(&mut make_node).collect(),
            flit_wires: (0..n).map(|_| VecDeque::new()).collect(),
            fast_wires: (0..n).map(|_| VecDeque::new()).collect(),
            now: 0,
            stats: NetStats::default(),
            collect_delivered: false,
            delivered_log: Vec::new(),
            events_baseline: EnergyEvents::default(),
            scratch_out: NodeOutputs::default(),
            scratch_delivered: Vec::new(),
        }
    }

    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Queue a packet at `node`'s NIC. Measured data packets count toward
    /// the offered load.
    pub fn inject(&mut self, node: NodeId, pkt: Packet) {
        if pkt.measured && pkt.class == MsgClass::Data {
            self.stats.packets_offered += 1;
        }
        self.nodes[node.index()].inject(self.now, pkt);
    }

    /// Advance the network one cycle.
    pub fn step(&mut self) {
        let now = self.now;

        // 1. Deliver wires due this cycle.
        for i in 0..self.nodes.len() {
            while let Some(&(t, _, _)) = self.flit_wires[i].front() {
                if t > now {
                    break;
                }
                debug_assert_eq!(t, now, "missed a flit delivery");
                let (_, dir, flit) = self.flit_wires[i].pop_front().expect("front checked");
                self.nodes[i].accept_flit(now, dir, flit);
            }
            while let Some(&(t, _)) = self.fast_wires[i].front() {
                if t > now {
                    break;
                }
                let (_, sig) = self.fast_wires[i].pop_front().expect("front checked");
                match sig {
                    FastSignal::Credit(d, c) => self.nodes[i].accept_credit(now, d, c),
                    FastSignal::VcCount(d, n) => self.nodes[i].accept_vc_count(now, d, n),
                }
            }
        }

        // 2. Step every node and route its outputs onto the wires.
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            self.scratch_out.clear();
            self.nodes[i].step(now, &mut self.scratch_out);
            for (dir, flit) in self.scratch_out.flits.drain(..) {
                let nb = self
                    .mesh
                    .neighbor(id, dir)
                    .unwrap_or_else(|| panic!("{id:?} emitted a flit off the {dir:?} edge"));
                self.flit_wires[nb.index()].push_back((now + 2, dir.opposite(), flit));
            }
            for (dir, credit) in self.scratch_out.credits.drain(..) {
                let nb = self
                    .mesh
                    .neighbor(id, dir)
                    .unwrap_or_else(|| panic!("{id:?} emitted a credit off the {dir:?} edge"));
                self.fast_wires[nb.index()]
                    .push_back((now + 1, FastSignal::Credit(dir.opposite(), credit)));
            }
            for (dir, count) in self.scratch_out.vc_counts.drain(..) {
                if let Some(nb) = self.mesh.neighbor(id, dir) {
                    self.fast_wires[nb.index()]
                        .push_back((now + 1, FastSignal::VcCount(dir.opposite(), count)));
                }
            }
        }

        // 3. Integrate leakage state and collect deliveries.
        for node in &mut self.nodes {
            let ps = node.power_state();
            self.stats.leakage.buffer_slot_cycles += ps.buffer_slots as u64;
            self.stats.leakage.slot_entry_cycles += ps.slot_entries as u64;
            self.stats.leakage.dlt_entry_cycles += ps.dlt_entries as u64;
        }
        self.stats.leakage.router_cycles += self.nodes.len() as u64;
        self.scratch_delivered.clear();
        for node in &mut self.nodes {
            node.drain_delivered(&mut self.scratch_delivered);
        }
        for d in &self.scratch_delivered {
            self.stats.record_delivery(d);
            if self.collect_delivered && d.measured && d.class == MsgClass::Data {
                self.delivered_log.push(*d);
            }
        }

        self.now += 1;
    }

    /// Run `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Start a measurement window: resets statistics and snapshots event
    /// counters so [`Network::end_measurement`] reports window deltas.
    pub fn begin_measurement(&mut self) {
        self.stats.begin_measurement(self.now);
        self.events_baseline = self.total_events();
    }

    /// Close the measurement window: fixes `measured_cycles` and stores the
    /// event-counter delta in `stats.events`.
    pub fn end_measurement(&mut self) {
        self.stats.end_measurement(self.now);
        self.stats.events = self.total_events().diff(&self.events_baseline);
    }

    /// Sum of all node event counters since construction.
    pub fn total_events(&self) -> EnergyEvents {
        let mut e = EnergyEvents::default();
        for node in &self.nodes {
            let ne = node.events();
            e.merge(&ne);
        }
        e
    }

    /// True when no flit is buffered anywhere and no wire is in flight.
    pub fn is_drained(&self) -> bool {
        self.nodes.iter().all(|n| n.occupancy() == 0)
            && self.flit_wires.iter().all(|w| w.is_empty())
    }

    /// Step until drained or `max_cycles` elapse; returns whether the
    /// network drained.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_drained() {
                return true;
            }
            self.step();
        }
        self.is_drained()
    }

    /// Total packets queued at source NICs (saturation detection).
    pub fn total_occupancy(&self) -> usize {
        self.nodes.iter().map(|n| n.occupancy()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::flit::PacketId;
    use crate::geometry::Coord;
    use crate::node::PacketNode;

    fn net(k: u16) -> Network<PacketNode> {
        let cfg = NetworkConfig::with_mesh(Mesh::square(k));
        Network::new(cfg.mesh, |id| PacketNode::new(id, &cfg, None))
    }

    #[test]
    fn single_packet_crosses_network() {
        let mut n = net(4);
        let src = n.mesh.id(Coord::new(0, 0));
        let dst = n.mesh.id(Coord::new(3, 3));
        n.begin_measurement();
        n.inject(src, Packet::data(PacketId(1), src, dst, 5, 0));
        assert!(n.drain(500), "packet must be delivered");
        n.end_measurement();
        assert_eq!(n.stats.packets_delivered, 1);
        assert_eq!(n.stats.flits_delivered, 5);
        // 6 hops at 4 cycles each plus serialisation and interface costs:
        // zero-load latency must be positive and modest.
        let lat = n.stats.avg_latency();
        assert!(lat > 24.0 && lat < 60.0, "unexpected zero-load latency {lat}");
    }

    #[test]
    fn latency_includes_source_queueing() {
        let mut fast = net(4);
        let mut slow = net(4);
        let src = fast.mesh.id(Coord::new(0, 0));
        let dst = fast.mesh.id(Coord::new(3, 0));
        fast.begin_measurement();
        slow.begin_measurement();
        // One packet alone vs. ten packets queued at once: the tenth waits.
        fast.inject(src, Packet::data(PacketId(0), src, dst, 5, 0));
        for i in 0..10 {
            slow.inject(src, Packet::data(PacketId(i), src, dst, 5, 0));
        }
        assert!(fast.drain(1000) && slow.drain(1000));
        fast.end_measurement();
        slow.end_measurement();
        assert!(slow.stats.avg_latency() > fast.stats.avg_latency() + 5.0);
        assert_eq!(slow.stats.packets_delivered, 10);
    }

    #[test]
    fn all_pairs_deliver() {
        let mut n = net(3);
        let mut pid = 0;
        for src in n.mesh.nodes() {
            for dst in n.mesh.nodes() {
                if src != dst {
                    n.inject(src, Packet::data(PacketId(pid), src, dst, 5, 0));
                    pid += 1;
                }
            }
        }
        n.begin_measurement();
        assert!(n.drain(20_000), "network failed to drain");
        n.end_measurement();
        assert_eq!(n.stats.packets_delivered, pid);
    }

    #[test]
    fn leakage_integrates_every_cycle() {
        let mut n = net(2);
        n.begin_measurement();
        n.run(10);
        n.end_measurement();
        assert_eq!(n.stats.leakage.router_cycles, 40);
        // 4 routers × 5 ports × 4 VCs × 5 slots × 10 cycles
        assert_eq!(n.stats.leakage.buffer_slot_cycles, 4 * 5 * 4 * 5 * 10);
    }

    #[test]
    fn events_window_excludes_warmup() {
        let mut n = net(3);
        let src = n.mesh.id(Coord::new(0, 0));
        let dst = n.mesh.id(Coord::new(2, 2));
        n.inject(src, Packet::data(PacketId(0), src, dst, 5, 0));
        n.drain(500);
        let warm = n.total_events();
        assert!(warm.buffer_writes > 0);
        n.begin_measurement();
        n.run(5);
        n.end_measurement();
        assert_eq!(n.stats.events.buffer_writes, 0, "warm-up events leaked into window");
    }
}
