//! The [`Fabric`] abstraction: one object-safe surface over every
//! switching backend (packet, TDM hybrid, SDM hybrid), so drivers,
//! experiment binaries and tests can be written once against
//! `&mut dyn Fabric` instead of dispatching over concrete network types.
//!
//! # Granularity and performance
//!
//! The trait boundary sits at **whole-network** granularity: one virtual
//! call per simulated cycle ([`Fabric::step`]), not one per node or per
//! flit. A 64-node cycle performs thousands of memory operations inside
//! the allocation-free kernel (`Network::step`), so a single dynamic
//! dispatch on top is unmeasurable — the parallel-stepping and
//! zero-allocation properties of the kernel are untouched. This is the
//! same seam EmuNoC-style harnesses use: any router model that can
//! inject, step and report statistics plugs into the one engine.
//!
//! # Implementations
//!
//! * [`Network<N>`](crate::Network) — generic over any sendable
//!   [`NodeModel`], which covers the packet-switched baseline
//!   (`Network<PacketNode>`) and the SDM hybrid (`Network<SdmNode>`);
//! * `TdmNetwork` (in `tdm-noc`) — forwards to its inner network but
//!   routes [`Fabric::step`] through the dynamic slot-table resize
//!   controller and exposes the resize observation hooks
//!   ([`Fabric::active_slots`], [`Fabric::resizes`]).

use noc_telemetry::{TelemetryConfig, TelemetryReport, WindowSnapshot};

use crate::flit::Packet;
use crate::geometry::NodeId;
use crate::network::Network;
use crate::node::{DeliveredPacket, NodeModel};
use crate::snapshot::{FabricSnapshot, FaultEvent, SnapshotError};
use crate::stats::{EnergyEvents, NetStats};
use crate::topology::Mesh;
use crate::Cycle;

/// One flow a profiled circuit plan wants a reserved path for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedFlow {
    pub src: NodeId,
    pub dst: NodeId,
}

/// A static circuit plan produced by a profiling pass (see
/// `noc-workload`): flows to pre-establish at run start, highest-ranked
/// first. With `pin` set the established circuits are exempt from
/// LRU/idle teardown, so the plan — not the reactive setup protocol —
/// owns the slot tables for the whole run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CircuitPlan {
    pub flows: Vec<PlannedFlow>,
    pub pin: bool,
}

/// An object-safe, whole-network switching backend.
///
/// Everything an experiment driver needs: inject packets, advance cycles,
/// bracket a measurement window, sample statistics/energy events, and —
/// for backends with a dynamic slot-table controller — observe resizes.
pub trait Fabric {
    /// The mesh this fabric simulates.
    fn mesh(&self) -> Mesh;

    /// Current simulation time in cycles.
    fn now(&self) -> Cycle;

    /// Queue a packet at `node`'s NIC.
    fn inject(&mut self, node: NodeId, pkt: Packet);

    /// Advance the whole network by one cycle (the single per-cycle
    /// virtual call — see the module docs).
    fn step(&mut self);

    /// Start a measurement window (resets statistics, snapshots event
    /// counters).
    fn begin_measurement(&mut self);

    /// Close the measurement window.
    fn end_measurement(&mut self);

    /// Statistics for the current/last measurement window.
    fn stats(&self) -> &NetStats;

    /// Mutable statistics access (drivers fix up `measured_cycles` to the
    /// injection window).
    fn stats_mut(&mut self) -> &mut NetStats;

    /// Energy-event sample: the sum of all node event counters since
    /// construction. Window deltas are `end_measurement`'s job.
    fn total_events(&self) -> EnergyEvents;

    /// True when no flit is buffered anywhere and no wire is in flight.
    fn is_drained(&self) -> bool;

    /// Enable/disable the delivered-packet log (per-class latency
    /// post-processing).
    fn set_collect_delivered(&mut self, on: bool);

    /// The delivered-packet log (empty unless collection is enabled).
    fn delivered_log(&self) -> &[DeliveredPacket];

    /// Clear the delivered-packet log (measurement-window bracketing).
    fn clear_delivered_log(&mut self);

    /// Fan the node-stepping phase over a worker pool (`0` = serial).
    /// Results are bit-identical either way.
    fn set_step_threads(&mut self, threads: usize);

    /// Disable the activity scheduler: step every node every cycle
    /// regardless of the active set. Results are bit-identical either way
    /// (the sleep/wake-vs-always-step property tests pin this); the knob
    /// exists for those tests and for debugging. Default: ignored, for
    /// fabrics without an activity scheduler.
    fn set_always_step(&mut self, _on: bool) {}

    /// Arm flit-lifecycle tracing and metrics collection. Telemetry only
    /// observes: the simulated network evolves bit-identically traced or
    /// untraced. Default: ignored, for uninstrumented fabrics.
    fn configure_telemetry(&mut self, _cfg: &TelemetryConfig) {}

    /// Disarm telemetry and return the assembled report (merged events,
    /// link counters, metrics windows). `None` when never armed.
    fn telemetry_report(&mut self) -> Option<TelemetryReport> {
        None
    }

    /// Closed metrics windows recorded so far, without disarming — the
    /// cheap per-cycle poll a live-streaming harness (`noc-serve`) makes
    /// between steps. Default 0, for uninstrumented fabrics.
    fn telemetry_window_count(&self) -> usize {
        0
    }

    /// Clone the closed metrics windows from index `from` on, without
    /// disarming (empty when telemetry is unarmed). Label the value
    /// columns with [`Fabric::telemetry_metric_names`].
    fn telemetry_windows_from(&self, _from: usize) -> Vec<WindowSnapshot> {
        Vec::new()
    }

    /// Registration-order metric names of the armed registry (empty when
    /// telemetry is unarmed).
    fn telemetry_metric_names(&self) -> Vec<String> {
        Vec::new()
    }

    /// Resize hook: the network-wide active slot-table size, for backends
    /// with TDM slot tables; `None` otherwise.
    fn active_slots(&self) -> Option<u16> {
        None
    }

    /// Resize hook: completed dynamic slot-table resizes.
    fn resizes(&self) -> u32 {
        0
    }

    /// Advance until `now() == target`. The default steps cycle by
    /// cycle; backends with an activity scheduler override this to leap
    /// over provably idle regions in O(1) (bit-identical results either
    /// way — only wall-clock cost differs).
    fn run_until(&mut self, target: Cycle) {
        while self.now() < target {
            self.step();
        }
    }

    /// Step until drained or `max_cycles` elapse; returns whether the
    /// fabric drained.
    fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_drained() {
                return true;
            }
            self.step();
        }
        self.is_drained()
    }

    /// Serialise the fabric's full mutable state into a versioned snapshot
    /// (see DESIGN.md §14). Fails while telemetry is armed. Default:
    /// unsupported, for fabrics without a snapshot seam.
    fn checkpoint(&self) -> Result<FabricSnapshot, SnapshotError> {
        Err(SnapshotError::Unsupported(
            "fabric does not implement checkpoints",
        ))
    }

    /// Restore state captured by [`Fabric::checkpoint`] on a fabric built
    /// from the *same* configuration. The restored fabric continues
    /// bit-identically to the one that was checkpointed.
    fn restore(&mut self, _snap: &FabricSnapshot) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(
            "fabric does not implement checkpoints",
        ))
    }

    /// Arm a link-fault schedule (kills and revives applied at their exact
    /// cycles; see `Network::set_faults`). Default: unsupported.
    fn set_faults(&mut self, _timeline: Vec<FaultEvent>) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(
            "fabric does not implement fault injection",
        ))
    }

    /// Pre-establish a profiled [`CircuitPlan`] before traffic starts:
    /// issue setups for every planned flow and step the fabric until the
    /// handshakes settle. Returns the number of circuits actually
    /// established (slot contention can reject some). Default:
    /// unsupported, for backends without reservable circuits.
    fn install_circuit_plan(&mut self, _plan: &CircuitPlan) -> Result<u32, SnapshotError> {
        Err(SnapshotError::Unsupported(
            "fabric does not implement circuit plans",
        ))
    }

    /// Live allocations in the fabric's flit arena — a leak diagnostic:
    /// after a full drain this must be zero even when faults dropped
    /// flits mid-flight. Default 0 for fabrics without an arena.
    fn arena_live(&self) -> usize {
        0
    }
}

impl<N: NodeModel + Send + 'static> Fabric for Network<N> {
    fn mesh(&self) -> Mesh {
        self.mesh
    }

    fn now(&self) -> Cycle {
        Network::now(self)
    }

    fn inject(&mut self, node: NodeId, pkt: Packet) {
        Network::inject(self, node, pkt);
    }

    fn step(&mut self) {
        Network::step(self);
    }

    fn run_until(&mut self, target: Cycle) {
        Network::run_until(self, target);
    }

    fn begin_measurement(&mut self) {
        Network::begin_measurement(self);
    }

    fn end_measurement(&mut self) {
        Network::end_measurement(self);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    fn total_events(&self) -> EnergyEvents {
        Network::total_events(self)
    }

    fn is_drained(&self) -> bool {
        Network::is_drained(self)
    }

    fn set_collect_delivered(&mut self, on: bool) {
        self.collect_delivered = on;
    }

    fn delivered_log(&self) -> &[DeliveredPacket] {
        &self.delivered_log
    }

    fn clear_delivered_log(&mut self) {
        self.delivered_log.clear();
    }

    fn set_step_threads(&mut self, threads: usize) {
        Network::set_step_threads(self, threads);
    }

    fn set_always_step(&mut self, on: bool) {
        Network::set_always_step(self, on);
    }

    fn configure_telemetry(&mut self, cfg: &TelemetryConfig) {
        Network::configure_telemetry(self, cfg);
    }

    fn telemetry_report(&mut self) -> Option<TelemetryReport> {
        Network::take_telemetry(self)
    }

    fn telemetry_window_count(&self) -> usize {
        Network::telemetry_window_count(self)
    }

    fn telemetry_windows_from(&self, from: usize) -> Vec<WindowSnapshot> {
        Network::telemetry_windows_from(self, from)
    }

    fn telemetry_metric_names(&self) -> Vec<String> {
        Network::telemetry_metric_names(self)
    }

    fn checkpoint(&self) -> Result<FabricSnapshot, SnapshotError> {
        Network::checkpoint(self)
    }

    fn restore(&mut self, snap: &FabricSnapshot) -> Result<(), SnapshotError> {
        Network::restore(self, snap)
    }

    fn set_faults(&mut self, timeline: Vec<FaultEvent>) -> Result<(), SnapshotError> {
        Network::set_faults(self, timeline);
        Ok(())
    }

    fn arena_live(&self) -> usize {
        self.arena().live()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::flit::PacketId;
    use crate::node::PacketNode;

    fn boxed(k: u16) -> Box<dyn Fabric> {
        let cfg = NetworkConfig::with_mesh(Mesh::square(k));
        Box::new(Network::new(cfg.mesh, move |id| {
            PacketNode::new(id, &cfg, None)
        }))
    }

    #[test]
    fn packet_network_drives_through_dyn_fabric() {
        let mut f = boxed(3);
        let mesh = f.mesh();
        let (src, dst) = (NodeId(0), NodeId(8));
        assert_eq!(mesh.len(), 9);
        f.begin_measurement();
        f.inject(src, Packet::data(PacketId(1), src, dst, 5, f.now()));
        assert!(f.drain(500), "packet must be delivered via dyn Fabric");
        f.end_measurement();
        assert_eq!(f.stats().packets_delivered, 1);
        assert!(f.total_events().buffer_writes > 0);
        assert_eq!(f.active_slots(), None, "packet fabric has no slot tables");
        assert_eq!(f.resizes(), 0);
    }

    #[test]
    fn delivered_log_controls_work_through_dyn_fabric() {
        let mut f = boxed(3);
        f.set_collect_delivered(true);
        f.begin_measurement();
        let (src, dst) = (NodeId(0), NodeId(4));
        f.inject(src, Packet::data(PacketId(2), src, dst, 5, f.now()));
        assert!(f.drain(500));
        assert_eq!(f.delivered_log().len(), 1);
        f.clear_delivered_log();
        assert!(f.delivered_log().is_empty());
    }
}
