//! Flit-level event tracing.
//!
//! A bounded ring buffer of network events, cheap enough to leave compiled
//! in (recording is a branch on an `enabled` flag) and precise enough to
//! reconstruct a packet's journey or a circuit's lifecycle hop by hop —
//! the instrumentation we wished for while hunting this repository's
//! teardown-vs-data races. Drivers enable it around a window of interest
//! and dump or query it afterwards.

use std::collections::VecDeque;

use crate::flit::PacketId;
use crate::geometry::{NodeId, Port};
use crate::Cycle;

/// One traced event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Flit buffered at a router input (packet-switched).
    Buffered {
        at: NodeId,
        port: Port,
        packet: PacketId,
        seq: u8,
    },
    /// Flit crossed a router's crossbar (either data path).
    Traversed {
        at: NodeId,
        out: Port,
        packet: PacketId,
        seq: u8,
        circuit: bool,
    },
    /// Flit ejected at its destination.
    Ejected {
        at: NodeId,
        packet: PacketId,
        seq: u8,
    },
    /// Slot-table reservation made (setup succeeded at this router).
    Reserved {
        at: NodeId,
        in_port: Port,
        slot: u16,
        duration: u8,
        path_id: u64,
    },
    /// Slot-table reservation released (teardown).
    Released {
        at: NodeId,
        in_port: Port,
        path_id: u64,
    },
}

impl TraceEvent {
    /// The packet this event concerns, if any.
    pub fn packet(&self) -> Option<PacketId> {
        match self {
            TraceEvent::Buffered { packet, .. }
            | TraceEvent::Traversed { packet, .. }
            | TraceEvent::Ejected { packet, .. } => Some(*packet),
            _ => None,
        }
    }
}

/// A bounded trace buffer: oldest events are dropped when full.
#[derive(Debug)]
pub struct Trace {
    events: VecDeque<(Cycle, TraceEvent)>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: false,
            dropped: 0,
        }
    }

    pub fn enable(&mut self) {
        self.enabled = true;
    }

    pub fn disable(&mut self) {
        self.enabled = false;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op while disabled).
    #[inline]
    pub fn record(&mut self, now: Cycle, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((now, event));
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the buffer wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn iter(&self) -> impl Iterator<Item = &(Cycle, TraceEvent)> {
        self.events.iter()
    }

    /// The journey of one packet, in event order.
    pub fn journey(&self, packet: PacketId) -> Vec<(Cycle, TraceEvent)> {
        self.events
            .iter()
            .filter(|(_, e)| e.packet() == Some(packet))
            .copied()
            .collect()
    }

    /// Render the trace (or one packet's journey) as text.
    pub fn dump(&self, packet: Option<PacketId>) -> String {
        let mut s = String::new();
        for (t, e) in self.events.iter() {
            if let Some(p) = packet {
                if e.packet() != Some(p) {
                    continue;
                }
            }
            s.push_str(&format!("[{t:>8}] {e:?}\n"));
        }
        s
    }

    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(p: u64) -> TraceEvent {
        TraceEvent::Ejected {
            at: NodeId(0),
            packet: PacketId(p),
            seq: 0,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::new(8);
        t.record(1, ev(1));
        assert!(t.is_empty());
        t.enable();
        t.record(2, ev(2));
        assert_eq!(t.len(), 1);
        t.disable();
        t.record(3, ev(3));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut t = Trace::new(3);
        t.enable();
        for i in 0..5 {
            t.record(i, ev(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.iter().next().expect("non-empty");
        assert_eq!(first.0, 2, "oldest remaining event");
    }

    #[test]
    fn journey_filters_by_packet() {
        let mut t = Trace::new(16);
        t.enable();
        t.record(
            1,
            TraceEvent::Buffered {
                at: NodeId(0),
                port: Port::Local,
                packet: PacketId(7),
                seq: 0,
            },
        );
        t.record(
            2,
            TraceEvent::Reserved {
                at: NodeId(1),
                in_port: Port::West,
                slot: 3,
                duration: 4,
                path_id: 9,
            },
        );
        t.record(
            3,
            TraceEvent::Traversed {
                at: NodeId(1),
                out: Port::East,
                packet: PacketId(7),
                seq: 0,
                circuit: false,
            },
        );
        t.record(4, ev(8));
        t.record(5, ev(7));
        let j = t.journey(PacketId(7));
        assert_eq!(j.len(), 3);
        assert!(
            j.windows(2).all(|w| w[0].0 <= w[1].0),
            "journey is time-ordered"
        );
        let text = t.dump(Some(PacketId(7)));
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("Traversed"));
    }

    #[test]
    fn protocol_events_have_no_packet() {
        let e = TraceEvent::Released {
            at: NodeId(2),
            in_port: Port::West,
            path_id: 5,
        };
        assert_eq!(e.packet(), None);
    }
}
