//! Round-robin arbiters used by the separable VC and switch allocators.

/// A round-robin arbiter over `n` requesters with a rotating priority
/// pointer, as in canonical VC router allocators.
#[derive(Clone, Debug)]
pub struct RoundRobin {
    n: usize,
    last: usize,
}

impl RoundRobin {
    pub fn new(n: usize) -> Self {
        RoundRobin {
            n,
            last: n.saturating_sub(1),
        }
    }

    /// Number of requesters this arbiter serves.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grant one of the asserted requests (`reqs[i] == true`), starting the
    /// search after the previously granted index. Returns the winner and
    /// advances the priority pointer, or `None` if nothing is requested.
    pub fn grant(&mut self, reqs: &[bool]) -> Option<usize> {
        debug_assert_eq!(reqs.len(), self.n);
        if self.n == 0 {
            return None;
        }
        for off in 1..=self.n {
            let i = (self.last + off) % self.n;
            if reqs[i] {
                self.last = i;
                return Some(i);
            }
        }
        None
    }

    /// Like [`RoundRobin::grant`] but with requests given by predicate.
    pub fn grant_by<F: FnMut(usize) -> bool>(&mut self, mut req: F) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        for off in 1..=self.n {
            let i = (self.last + off) % self.n;
            if req(i) {
                self.last = i;
                return Some(i);
            }
        }
        None
    }

    /// Resize the arbiter (used when VC counts change under power gating).
    pub fn resize(&mut self, n: usize) {
        self.n = n;
        if n == 0 {
            self.last = 0;
        } else {
            self.last %= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_under_full_load() {
        let mut a = RoundRobin::new(4);
        let reqs = [true; 4];
        let mut grants = [0u32; 4];
        for _ in 0..400 {
            grants[a.grant(&reqs).unwrap()] += 1;
        }
        assert_eq!(grants, [100; 4]);
    }

    #[test]
    fn skips_idle_requesters() {
        let mut a = RoundRobin::new(3);
        let reqs = [false, true, false];
        for _ in 0..5 {
            assert_eq!(a.grant(&reqs), Some(1));
        }
        assert_eq!(a.grant(&[false; 3]), None);
    }

    #[test]
    fn rotates_after_grant() {
        let mut a = RoundRobin::new(3);
        // Starts searching at index 0.
        assert_eq!(a.grant(&[true, true, true]), Some(0));
        assert_eq!(a.grant(&[true, true, true]), Some(1));
        assert_eq!(a.grant(&[true, false, true]), Some(2));
        assert_eq!(a.grant(&[true, true, true]), Some(0));
    }

    #[test]
    fn grant_by_predicate() {
        let mut a = RoundRobin::new(5);
        assert_eq!(a.grant_by(|i| i % 2 == 1), Some(1));
        assert_eq!(a.grant_by(|i| i % 2 == 1), Some(3));
        assert_eq!(a.grant_by(|i| i % 2 == 1), Some(1));
    }

    #[test]
    fn zero_and_resize() {
        let mut a = RoundRobin::new(0);
        assert_eq!(a.grant(&[]), None);
        a.resize(2);
        assert!(a.grant(&[true, true]).is_some());
        a.resize(1);
        assert_eq!(a.grant(&[true]), Some(0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A grant always goes to a requesting index, and repeated grants
        /// over a fixed request set visit every requester (no starvation).
        #[test]
        fn grants_are_valid_and_starvation_free(
            n in 1usize..16,
            reqs in prop::collection::vec(any::<bool>(), 1..16),
        ) {
            let n = n.min(reqs.len());
            let reqs = &reqs[..n];
            let mut arb = RoundRobin::new(n);
            let requesters: Vec<usize> =
                (0..n).filter(|&i| reqs[i]).collect();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..2 * n {
                match arb.grant(reqs) {
                    Some(w) => {
                        prop_assert!(reqs[w], "granted a non-requester");
                        seen.insert(w);
                    }
                    None => prop_assert!(requesters.is_empty()),
                }
            }
            // Everyone who asked got served within 2n rounds.
            prop_assert_eq!(seen.len(), requesters.len());
        }

        /// Consecutive grants over a full request set never repeat an index
        /// before all others have been served (strict rotation).
        #[test]
        fn full_load_is_strictly_rotating(n in 2usize..12) {
            let reqs = vec![true; n];
            let mut arb = RoundRobin::new(n);
            let mut order = Vec::new();
            for _ in 0..n {
                order.push(arb.grant(&reqs).expect("always grants"));
            }
            let distinct: std::collections::HashSet<_> = order.iter().collect();
            prop_assert_eq!(distinct.len(), n);
        }
    }
}
