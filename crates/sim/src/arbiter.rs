//! Round-robin arbiters used by the separable VC and switch allocators.

/// A round-robin arbiter over `n` requesters with a rotating priority
/// pointer, as in canonical VC router allocators.
///
/// # Grant order
///
/// The priority pointer holds the **last granted** index and the search
/// starts one past it. A fresh arbiter initialises the pointer to `n - 1`
/// so that the very first grant goes to index 0 and a fully-loaded arbiter
/// then rotates `0, 1, …, n-1, 0, …` — the order the allocator unit tests
/// pin. [`RoundRobin::grant_mask`] implements the same rotation over a
/// `u64` request mask with `trailing_zeros`; the two are grant-for-grant
/// identical (see the `mask_matches_slice` property test).
#[derive(Clone, Debug)]
pub struct RoundRobin {
    n: usize,
    last: usize,
}

impl RoundRobin {
    pub fn new(n: usize) -> Self {
        RoundRobin {
            n,
            last: n.saturating_sub(1),
        }
    }

    /// Number of requesters this arbiter serves.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grant one of the asserted requests (`reqs[i] == true`), starting the
    /// search after the previously granted index. Returns the winner and
    /// advances the priority pointer, or `None` if nothing is requested.
    pub fn grant(&mut self, reqs: &[bool]) -> Option<usize> {
        debug_assert_eq!(reqs.len(), self.n);
        if self.n == 0 {
            return None;
        }
        for off in 1..=self.n {
            let i = (self.last + off) % self.n;
            if reqs[i] {
                self.last = i;
                return Some(i);
            }
        }
        None
    }

    /// Like [`RoundRobin::grant`] but with requests given by predicate.
    pub fn grant_by<F: FnMut(usize) -> bool>(&mut self, mut req: F) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        for off in 1..=self.n {
            let i = (self.last + off) % self.n;
            if req(i) {
                self.last = i;
                return Some(i);
            }
        }
        None
    }

    /// Like [`RoundRobin::grant`] but with the request set given as a `u64`
    /// bitmask (bit `i` set ⇔ requester `i` asserts). The rotating search of
    /// the slice variant becomes two `trailing_zeros` probes: first over the
    /// bits at or past the start position, then over the wrapped-around low
    /// bits. Grant-for-grant identical to `grant` on the same request set.
    pub fn grant_mask(&mut self, mask: u64) -> Option<usize> {
        debug_assert!(self.n <= 64, "mask arbiter supports at most 64 requesters");
        debug_assert!(
            self.n == 64 || mask >> self.n == 0,
            "request mask has bits beyond the requester count"
        );
        if self.n == 0 || mask == 0 {
            return None;
        }
        let start = (self.last + 1) % self.n;
        let ahead = mask >> start;
        let i = if ahead != 0 {
            start + ahead.trailing_zeros() as usize
        } else {
            mask.trailing_zeros() as usize
        };
        self.last = i;
        Some(i)
    }

    /// Resize the arbiter (used when VC counts change under power gating).
    pub fn resize(&mut self, n: usize) {
        self.n = n;
        if n == 0 {
            self.last = 0;
        } else {
            self.last %= n;
        }
    }
}

// Arbiter pointers are simulation state: a restored allocator must grant
// in exactly the order the continuous run would have.
crate::impl_snap!(RoundRobin { n, last });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_under_full_load() {
        let mut a = RoundRobin::new(4);
        let reqs = [true; 4];
        let mut grants = [0u32; 4];
        for _ in 0..400 {
            grants[a.grant(&reqs).unwrap()] += 1;
        }
        assert_eq!(grants, [100; 4]);
    }

    #[test]
    fn skips_idle_requesters() {
        let mut a = RoundRobin::new(3);
        let reqs = [false, true, false];
        for _ in 0..5 {
            assert_eq!(a.grant(&reqs), Some(1));
        }
        assert_eq!(a.grant(&[false; 3]), None);
    }

    #[test]
    fn rotates_after_grant() {
        let mut a = RoundRobin::new(3);
        // Starts searching at index 0.
        assert_eq!(a.grant(&[true, true, true]), Some(0));
        assert_eq!(a.grant(&[true, true, true]), Some(1));
        assert_eq!(a.grant(&[true, false, true]), Some(2));
        assert_eq!(a.grant(&[true, true, true]), Some(0));
    }

    #[test]
    fn grant_by_predicate() {
        let mut a = RoundRobin::new(5);
        assert_eq!(a.grant_by(|i| i % 2 == 1), Some(1));
        assert_eq!(a.grant_by(|i| i % 2 == 1), Some(3));
        assert_eq!(a.grant_by(|i| i % 2 == 1), Some(1));
    }

    /// Pins the grant order the mask rewrite must preserve: a fresh arbiter
    /// (priority pointer at `n - 1`) grants index 0 first, then rotates.
    #[test]
    fn fresh_arbiter_grants_index_zero_first() {
        let mut slice = RoundRobin::new(3);
        let mut mask = RoundRobin::new(3);
        assert_eq!(slice.grant(&[true, true, true]), Some(0));
        assert_eq!(mask.grant_mask(0b111), Some(0));
        assert_eq!(mask.grant_mask(0b111), Some(1));
        assert_eq!(mask.grant_mask(0b101), Some(2));
        assert_eq!(mask.grant_mask(0b111), Some(0));
    }

    #[test]
    fn mask_wraps_past_pointer() {
        let mut a = RoundRobin::new(4);
        assert_eq!(a.grant_mask(0b0100), Some(2));
        // Only lower indices request: search wraps around.
        assert_eq!(a.grant_mask(0b0011), Some(0));
        assert_eq!(a.grant_mask(0b0010), Some(1));
        assert_eq!(a.grant_mask(0), None);
    }

    #[test]
    fn mask_full_width() {
        let mut a = RoundRobin::new(64);
        assert_eq!(a.grant_mask(u64::MAX), Some(0));
        assert_eq!(a.grant_mask(1 << 63), Some(63));
        assert_eq!(a.grant_mask(u64::MAX), Some(0));
    }

    #[test]
    fn zero_and_resize() {
        let mut a = RoundRobin::new(0);
        assert_eq!(a.grant(&[]), None);
        a.resize(2);
        assert!(a.grant(&[true, true]).is_some());
        a.resize(1);
        assert_eq!(a.grant(&[true]), Some(0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A grant always goes to a requesting index, and repeated grants
        /// over a fixed request set visit every requester (no starvation).
        #[test]
        fn grants_are_valid_and_starvation_free(
            n in 1usize..16,
            reqs in prop::collection::vec(any::<bool>(), 1..16),
        ) {
            let n = n.min(reqs.len());
            let reqs = &reqs[..n];
            let mut arb = RoundRobin::new(n);
            let requesters: Vec<usize> =
                (0..n).filter(|&i| reqs[i]).collect();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..2 * n {
                match arb.grant(reqs) {
                    Some(w) => {
                        prop_assert!(reqs[w], "granted a non-requester");
                        seen.insert(w);
                    }
                    None => prop_assert!(requesters.is_empty()),
                }
            }
            // Everyone who asked got served within 2n rounds.
            prop_assert_eq!(seen.len(), requesters.len());
        }

        /// `grant_mask` is grant-for-grant identical to the slice-based
        /// `grant` over arbitrary request sequences, including empty sets
        /// (which must not advance the priority pointer).
        #[test]
        fn mask_matches_slice(
            n in 1usize..17,
            rounds in prop::collection::vec(any::<u16>(), 1..64),
        ) {
            let mut slice = RoundRobin::new(n);
            let mut mask = RoundRobin::new(n);
            for bits in rounds {
                let reqs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                let m = reqs.iter().enumerate()
                    .filter(|(_, &r)| r)
                    .fold(0u64, |acc, (i, _)| acc | 1 << i);
                prop_assert_eq!(slice.grant(&reqs), mask.grant_mask(m));
            }
        }

        /// Consecutive grants over a full request set never repeat an index
        /// before all others have been served (strict rotation).
        #[test]
        fn full_load_is_strictly_rotating(n in 2usize..12) {
            let reqs = vec![true; n];
            let mut arb = RoundRobin::new(n);
            let mut order = Vec::new();
            for _ in 0..n {
                order.push(arb.grant(&reqs).expect("always grants"));
            }
            let distinct: std::collections::HashSet<_> = order.iter().collect();
            prop_assert_eq!(distinct.len(), n);
        }
    }
}
