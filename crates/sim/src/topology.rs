//! Network topologies: 2D mesh, 2D torus and concentrated mesh, plus the
//! precomputed adjacency tables the hot stepping loop walks.
//!
//! The [`Topology`] value is a small `Copy` descriptor (kind + radices +
//! concentration) that answers coordinate/neighbour/distance queries
//! arithmetically; it is what configs carry and what routing consults.
//! [`TopoTables`] is the structure-of-arrays companion built once at
//! network construction: a flat `id*4 + direction` neighbour table so the
//! per-cycle link-delivery sweep does table lookups instead of div/mod
//! coordinate math (see DESIGN.md §13).
//!
//! The historical name `Mesh` is kept as an alias — a plain 2D mesh is
//! `Topology { kind: Mesh2D, .. }` and all pre-topology call sites
//! (`Mesh::square(k)`, `Mesh::new(kx, ky)`) construct exactly that.

use serde::{Deserialize, Serialize};

use crate::geometry::{Coord, Direction, NodeId};

/// Which connectivity rule the fabric uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Plain `k_x × k_y` 2D mesh: links end at the edges.
    #[default]
    Mesh2D,
    /// 2D torus: every row and column wraps around. Dimension-order
    /// routing picks the shorter way around each ring, and the wrap links
    /// define the dateline for deadlock-free VC-class routing (§13).
    Torus2D,
    /// Concentrated mesh: the router graph is a plain mesh, but each
    /// router serves `c` clients, so a `k_x × k_y` c-mesh models
    /// `c · k_x · k_y` terminals with the traffic layer injecting `c`
    /// independent trials per router per cycle.
    CMesh,
}

/// A `k_x × k_y` 2D topology (mesh, torus or concentrated mesh).
///
/// `Mesh` is a backwards-compatible alias: `Mesh::new`/`Mesh::square`
/// build the plain-mesh variant, and every query method on a plain mesh
/// behaves exactly as the old mesh-only type did.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    kind: TopologyKind,
    kx: u16,
    ky: u16,
    /// Clients per router (ConcentratedMesh); 1 for the other kinds.
    c: u8,
}

/// Backwards-compatible name for [`Topology`]; the plain-mesh constructors
/// live on it (`Mesh::square(6)` is still the default network shape).
pub type Mesh = Topology;

impl Topology {
    fn build(kind: TopologyKind, kx: u16, ky: u16, c: u8) -> Self {
        assert!(kx > 0 && ky > 0, "topology dimensions must be positive");
        // Node ids are packed into u16 flit fields with u16::MAX reserved
        // as the "no node" sentinel (see `crate::flit`).
        assert!(
            (kx as usize) * (ky as usize) < u16::MAX as usize,
            "topology too large for packed 16-bit node ids"
        );
        Topology { kind, kx, ky, c }
    }

    /// Create a plain mesh with the given dimensions. Panics if either is
    /// zero.
    pub fn new(kx: u16, ky: u16) -> Self {
        Topology::build(TopologyKind::Mesh2D, kx, ky, 1)
    }

    /// A square `k × k` plain mesh.
    pub fn square(k: u16) -> Self {
        Topology::new(k, k)
    }

    /// A `k_x × k_y` 2D torus. Both radices must be at least 2 (a ring of
    /// one node would be a self-loop).
    pub fn torus(kx: u16, ky: u16) -> Self {
        assert!(kx >= 2 && ky >= 2, "torus radices must be at least 2");
        Topology::build(TopologyKind::Torus2D, kx, ky, 1)
    }

    /// A square `k × k` torus.
    pub fn torus_square(k: u16) -> Self {
        Topology::torus(k, k)
    }

    /// A concentrated mesh: `k_x × k_y` routers, `c` clients each.
    pub fn cmesh(kx: u16, ky: u16, c: u8) -> Self {
        assert!(c >= 1, "concentration must be at least 1");
        Topology::build(TopologyKind::CMesh, kx, ky, c)
    }

    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    pub fn is_torus(&self) -> bool {
        self.kind == TopologyKind::Torus2D
    }

    /// Clients per router: `c` for a concentrated mesh, 1 otherwise.
    pub fn concentration(&self) -> u8 {
        self.c
    }

    /// Total client terminals (`len() * concentration()`).
    pub fn clients(&self) -> usize {
        self.len() * self.c as usize
    }

    pub fn kx(&self) -> u16 {
        self.kx
    }

    pub fn ky(&self) -> u16 {
        self.ky
    }

    /// Total number of routers/nodes.
    pub fn len(&self) -> usize {
        self.kx as usize * self.ky as usize
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.len()
    }

    pub fn coord(&self, id: NodeId) -> Coord {
        debug_assert!(self.contains(id));
        Coord {
            x: (id.0 % self.kx as u32) as u16,
            y: (id.0 / self.kx as u32) as u16,
        }
    }

    pub fn id(&self, c: Coord) -> NodeId {
        debug_assert!(c.x < self.kx && c.y < self.ky);
        NodeId(c.y as u32 * self.kx as u32 + c.x as u32)
    }

    /// The neighbour of `id` in `dir`: `None` at a mesh edge, the
    /// wrapped-around node on a torus.
    pub fn neighbor(&self, id: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(id);
        let torus = self.is_torus();
        let n = match dir {
            Direction::North => {
                if c.y == 0 {
                    if !torus {
                        return None;
                    }
                    Coord::new(c.x, self.ky - 1)
                } else {
                    Coord::new(c.x, c.y - 1)
                }
            }
            Direction::South => {
                if c.y + 1 >= self.ky {
                    if !torus {
                        return None;
                    }
                    Coord::new(c.x, 0)
                } else {
                    Coord::new(c.x, c.y + 1)
                }
            }
            Direction::West => {
                if c.x == 0 {
                    if !torus {
                        return None;
                    }
                    Coord::new(self.kx - 1, c.y)
                } else {
                    Coord::new(c.x - 1, c.y)
                }
            }
            Direction::East => {
                if c.x + 1 >= self.kx {
                    if !torus {
                        return None;
                    }
                    Coord::new(0, c.y)
                } else {
                    Coord::new(c.x + 1, c.y)
                }
            }
        };
        Some(self.id(n))
    }

    /// Whether the link out of `id` in `dir` crosses the wrap edge — the
    /// torus "dateline". Always false on non-torus topologies.
    pub fn wraps(&self, id: NodeId, dir: Direction) -> bool {
        if !self.is_torus() {
            return false;
        }
        let c = self.coord(id);
        match dir {
            Direction::North => c.y == 0,
            Direction::South => c.y + 1 >= self.ky,
            Direction::West => c.x == 0,
            Direction::East => c.x + 1 >= self.kx,
        }
    }

    /// Distance along one ring dimension of radix `k` (shorter way around
    /// on a torus, plain difference otherwise).
    #[inline]
    fn dim_dist(&self, from: u16, to: u16, k: u16) -> u32 {
        let d = from.abs_diff(to) as u32;
        if self.is_torus() {
            d.min(k as u32 - d)
        } else {
            d
        }
    }

    /// Minimal hop count between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        self.dim_dist(ca.x, cb.x, self.kx) + self.dim_dist(ca.y, cb.y, self.ky)
    }

    /// The minimal direction to move one X step from `cx` toward `dx`, or
    /// `None` when already aligned. On a torus the shorter way around the
    /// ring wins; an exact tie (even radix, distance `kx/2`) resolves East
    /// so dimension-order routing stays consistent along the whole path.
    pub fn x_dir_toward(&self, cx: u16, dx: u16) -> Option<Direction> {
        if cx == dx {
            return None;
        }
        if self.is_torus() {
            let east = (dx as u32 + self.kx as u32 - cx as u32) % self.kx as u32;
            let west = self.kx as u32 - east;
            Some(if east <= west {
                Direction::East
            } else {
                Direction::West
            })
        } else if cx < dx {
            Some(Direction::East)
        } else {
            Some(Direction::West)
        }
    }

    /// The minimal direction to move one Y step from `cy` toward `dy`
    /// (ties on a torus resolve South); see [`Topology::x_dir_toward`].
    pub fn y_dir_toward(&self, cy: u16, dy: u16) -> Option<Direction> {
        if cy == dy {
            return None;
        }
        if self.is_torus() {
            let south = (dy as u32 + self.ky as u32 - cy as u32) % self.ky as u32;
            let north = self.ky as u32 - south;
            Some(if south <= north {
                Direction::South
            } else {
                Direction::North
            })
        } else if cy < dy {
            Some(Direction::South)
        } else {
            Some(Direction::North)
        }
    }

    /// Whether two distinct nodes are neighbours (used by
    /// vicinity-sharing to find hop-off candidates).
    pub fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.hops(a, b) == 1
    }

    /// All neighbours of a node.
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        Direction::ALL
            .into_iter()
            .filter_map(move |d| self.neighbor(id, d))
    }
}

/// Sentinel in [`TopoTables`] for "no link out of this port".
pub const NO_NEIGHBOR: u32 = u32::MAX;

/// Precomputed adjacency tables: one flat `nodes × 4` row-major array of
/// neighbour ids (`NO_NEIGHBOR` at mesh edges), built once at network
/// construction so the per-cycle wiring sweep never recomputes
/// coordinates. Row `i` holds the neighbours of node `i` indexed by
/// [`Direction::index`].
#[derive(Clone, Debug)]
pub struct TopoTables {
    neighbor: Box<[u32]>,
}

impl TopoTables {
    /// Shared tables for `topo`, building them at most once per distinct
    /// (kind, radices, concentration) for the whole process. Adjacency is
    /// pure structure, so every network of the same shape — including the
    /// workers of a batch sweep — can hold the same `Arc` instead of
    /// rebuilding the table per fabric. Entries are tiny (4 B × 4 × nodes)
    /// and the set of distinct shapes a process touches is small, so the
    /// cache never evicts.
    pub fn shared(topo: &Topology) -> std::sync::Arc<TopoTables> {
        use std::collections::HashMap;
        use std::sync::{Arc, Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<HashMap<Topology, Arc<TopoTables>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("topo table cache poisoned");
        Arc::clone(
            map.entry(*topo)
                .or_insert_with(|| Arc::new(TopoTables::build(topo))),
        )
    }

    pub fn build(topo: &Topology) -> Self {
        let n = topo.len();
        let mut neighbor = vec![NO_NEIGHBOR; n * 4].into_boxed_slice();
        for id in topo.nodes() {
            for d in Direction::ALL {
                if let Some(nb) = topo.neighbor(id, d) {
                    neighbor[id.index() * 4 + d.index()] = nb.0;
                }
            }
        }
        TopoTables { neighbor }
    }

    /// Number of nodes covered by the tables.
    pub fn len(&self) -> usize {
        self.neighbor.len() / 4
    }

    pub fn is_empty(&self) -> bool {
        self.neighbor.is_empty()
    }

    /// The neighbour of node `i` in `dir`, or `None` at an edge.
    #[inline]
    pub fn neighbor(&self, i: usize, dir: Direction) -> Option<usize> {
        let nb = self.neighbor[i * 4 + dir.index()];
        if nb == NO_NEIGHBOR {
            None
        } else {
            Some(nb as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Port;

    #[test]
    fn coords_roundtrip() {
        let m = Mesh::square(6);
        for id in m.nodes() {
            assert_eq!(m.id(m.coord(id)), id);
        }
        assert_eq!(m.len(), 36);
    }

    #[test]
    fn neighbors_edges() {
        let m = Mesh::square(4);
        let corner = m.id(Coord::new(0, 0));
        assert_eq!(m.neighbor(corner, Direction::North), None);
        assert_eq!(m.neighbor(corner, Direction::West), None);
        assert_eq!(
            m.neighbor(corner, Direction::East),
            Some(m.id(Coord::new(1, 0)))
        );
        assert_eq!(
            m.neighbor(corner, Direction::South),
            Some(m.id(Coord::new(0, 1)))
        );
    }

    #[test]
    fn neighbor_symmetry() {
        for m in [Mesh::new(5, 3), Mesh::torus(5, 3), Mesh::cmesh(5, 3, 4)] {
            for id in m.nodes() {
                for d in Direction::ALL {
                    if let Some(n) = m.neighbor(id, d) {
                        assert_eq!(m.neighbor(n, d.opposite()), Some(id));
                    }
                }
            }
        }
    }

    #[test]
    fn hops_and_adjacency() {
        let m = Mesh::square(6);
        let a = m.id(Coord::new(1, 1));
        let b = m.id(Coord::new(4, 3));
        assert_eq!(m.hops(a, b), 5);
        assert!(!m.adjacent(a, b));
        assert!(m.adjacent(a, m.id(Coord::new(1, 2))));
        assert!(!m.adjacent(a, a));
    }

    #[test]
    fn direction_opposite_involution() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn port_direction_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(d.as_port().direction(), Some(d));
        }
        assert_eq!(Port::Local.direction(), None);
    }

    #[test]
    fn rectangular_mesh() {
        let m = Mesh::new(8, 2);
        assert_eq!(m.len(), 16);
        let last = m.id(Coord::new(7, 1));
        assert_eq!(last, NodeId(15));
        assert_eq!(m.neighbor(last, Direction::East), None);
        assert_eq!(m.neighbor(last, Direction::South), None);
    }

    #[test]
    fn torus_wraps_every_edge() {
        let t = Mesh::torus(4, 3);
        let corner = t.id(Coord::new(0, 0));
        assert_eq!(
            t.neighbor(corner, Direction::North),
            Some(t.id(Coord::new(0, 2)))
        );
        assert_eq!(
            t.neighbor(corner, Direction::West),
            Some(t.id(Coord::new(3, 0)))
        );
        // Every node has all four neighbours on a torus.
        for id in t.nodes() {
            assert_eq!(t.neighbors(id).count(), 4);
        }
    }

    #[test]
    fn torus_hops_take_the_short_way_around() {
        let t = Mesh::torus(8, 8);
        let a = t.id(Coord::new(0, 0));
        let b = t.id(Coord::new(7, 7));
        // Mesh distance would be 14; each ring wraps in 1.
        assert_eq!(t.hops(a, b), 2);
        let m = Mesh::square(8);
        assert_eq!(m.hops(a, b), 14);
    }

    #[test]
    fn torus_dateline_flags_only_wrap_links() {
        let t = Mesh::torus(4, 4);
        assert!(t.wraps(t.id(Coord::new(3, 1)), Direction::East));
        assert!(t.wraps(t.id(Coord::new(0, 1)), Direction::West));
        assert!(t.wraps(t.id(Coord::new(1, 0)), Direction::North));
        assert!(t.wraps(t.id(Coord::new(1, 3)), Direction::South));
        assert!(!t.wraps(t.id(Coord::new(1, 1)), Direction::East));
        // A mesh has no dateline at all.
        let m = Mesh::square(4);
        assert!(!m.wraps(m.id(Coord::new(3, 1)), Direction::East));
    }

    #[test]
    fn dir_toward_is_minimal_and_tie_breaks_positive() {
        let t = Mesh::torus(6, 6);
        // Distance 2 east vs 4 west.
        assert_eq!(t.x_dir_toward(0, 2), Some(Direction::East));
        // Distance 4 east vs 2 west.
        assert_eq!(t.x_dir_toward(0, 4), Some(Direction::West));
        // Exact tie (distance 3 both ways) resolves positive.
        assert_eq!(t.x_dir_toward(0, 3), Some(Direction::East));
        assert_eq!(t.y_dir_toward(0, 3), Some(Direction::South));
        assert_eq!(t.x_dir_toward(2, 2), None);
        let m = Mesh::square(6);
        assert_eq!(m.x_dir_toward(0, 4), Some(Direction::East));
        assert_eq!(m.x_dir_toward(4, 0), Some(Direction::West));
    }

    #[test]
    fn cmesh_counts_clients_but_routes_like_a_mesh() {
        let c = Mesh::cmesh(4, 4, 4);
        assert_eq!(c.len(), 16);
        assert_eq!(c.clients(), 64);
        assert_eq!(c.concentration(), 4);
        let m = Mesh::square(4);
        for id in c.nodes() {
            for d in Direction::ALL {
                assert_eq!(c.neighbor(id, d), m.neighbor(id, d));
            }
        }
        assert_eq!(Mesh::square(4).clients(), 16);
    }

    #[test]
    fn shared_tables_are_built_once_per_shape() {
        let a = TopoTables::shared(&Mesh::square(7));
        let b = TopoTables::shared(&Mesh::square(7));
        assert!(std::sync::Arc::ptr_eq(&a, &b), "same shape, same tables");
        let c = TopoTables::shared(&Mesh::torus(7, 7));
        assert!(!std::sync::Arc::ptr_eq(&a, &c), "torus wires differently");
        assert_eq!(c.len(), 49);
    }

    #[test]
    fn topo_tables_match_arithmetic_neighbors() {
        for topo in [Mesh::new(5, 3), Mesh::torus(4, 6), Mesh::cmesh(3, 3, 2)] {
            let tables = TopoTables::build(&topo);
            assert_eq!(tables.len(), topo.len());
            for id in topo.nodes() {
                for d in Direction::ALL {
                    assert_eq!(
                        tables.neighbor(id.index(), d),
                        topo.neighbor(id, d).map(|n| n.index()),
                        "node {id} dir {d:?}"
                    );
                }
            }
        }
    }
}
