//! Network interface: packet injection (with source queueing), flit
//! serialisation under credit flow control, and ejection/reassembly.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::arbiter::RoundRobin;
use crate::arena::ConfigArena;
use crate::config::RouterConfig;
use crate::dense::RxTable;
use crate::flit::{Flit, Packet, PacketId, Switching};
use crate::geometry::NodeId;
use crate::node::{DeliveredKind, DeliveredPacket};
use crate::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use crate::Cycle;

struct Stream {
    packet: Packet,
    next: u8,
    vc: u8,
}

crate::impl_snap!(Stream { packet, next, vc });

/// A node's network interface for the packet-switched network.
///
/// Packets wait in an unbounded source queue (open-loop methodology), are
/// serialised one at a time onto the router's local input port — one flit
/// per cycle, subject to per-VC credits — and reassembled on ejection.
pub struct Nic {
    id: NodeId,
    buf_depth: u8,
    inject_queue: VecDeque<Packet>,
    current: Option<Stream>,
    /// Credit view of the router's local input port VCs.
    credits: Vec<u8>,
    /// Router's active VC count (VC power gating): new packets only start
    /// on VCs below this.
    router_active_vcs: u8,
    /// Upper bound on the VCs new streams may start in. On a torus,
    /// injected packets must begin in dateline class 0 (the lower VC
    /// half); node constructors set this from the topology.
    inject_vc_limit: u8,
    vc_rr: RoundRobin,
    /// Flits received so far per in-flight inbound packet.
    rx: RxTable,
    /// Configuration-payload slab; replaced by the harness's shared arena
    /// via [`Nic::set_arena`] when the node joins a network.
    arena: Arc<ConfigArena>,
    delivered: Vec<DeliveredPacket>,
    /// Flits injected into the router (for traffic accounting).
    pub flits_injected: u64,
    // O(1) occupancy bookkeeping: flits across all queued packets and flits
    // held in partial reassembly, kept in sync by enqueue/next_flit and
    // accept_ejected so `occupancy` never scans the source queue.
    queued_flits: usize,
    rx_flits: usize,
}

impl Nic {
    pub fn new(id: NodeId, cfg: &RouterConfig) -> Self {
        Nic {
            id,
            buf_depth: cfg.buf_depth,
            // Open-loop sources keep the queue near-empty below
            // saturation; pre-seeding the capacity keeps bursty arrivals
            // off the allocator in the steady state (DESIGN.md §17).
            inject_queue: VecDeque::with_capacity(32),
            current: None,
            credits: vec![cfg.buf_depth; cfg.vcs_per_port as usize],
            router_active_vcs: cfg.vcs_per_port,
            inject_vc_limit: cfg.vcs_per_port,
            vc_rr: RoundRobin::new(cfg.vcs_per_port as usize),
            rx: RxTable::new(),
            arena: Arc::new(ConfigArena::new()),
            delivered: Vec::with_capacity(8),
            flits_injected: 0,
            queued_flits: 0,
            rx_flits: 0,
        }
    }

    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configuration-payload arena this NIC serialises against.
    pub fn arena(&self) -> &Arc<ConfigArena> {
        &self.arena
    }

    /// Adopt the network-wide payload arena (see
    /// [`NodeModel::attach_arena`](crate::node::NodeModel::attach_arena)).
    pub fn set_arena(&mut self, arena: Arc<ConfigArena>) {
        self.arena = arena;
    }

    /// Queue a packet for injection.
    pub fn enqueue(&mut self, pkt: Packet) {
        self.queued_flits += pkt.len_flits as usize;
        self.inject_queue.push_back(pkt);
    }

    /// Put a packet at the *front* of the queue (configuration messages get
    /// priority over queued data, keeping setup latency low; they are <1 %
    /// of traffic so data packets are barely delayed).
    pub fn enqueue_front(&mut self, pkt: Packet) {
        self.queued_flits += pkt.len_flits as usize;
        self.inject_queue.push_front(pkt);
    }

    /// Credit returned by the router's local input port.
    pub fn credit(&mut self, vc: u8) {
        let c = &mut self.credits[vc as usize];
        debug_assert!(*c < self.buf_depth, "NIC credit overflow");
        *c += 1;
    }

    pub fn set_router_active_vcs(&mut self, count: u8) {
        self.router_active_vcs = count.min(self.credits.len() as u8);
    }

    /// Restrict new streams to the first `limit` VCs (torus dateline
    /// class 0; see [`crate::router::PsPipeline`] for the class rules).
    pub fn set_inject_vc_limit(&mut self, limit: u8) {
        self.inject_vc_limit = limit.clamp(1, self.credits.len() as u8);
    }

    /// Produce the next packet-switched flit to inject this cycle, if
    /// bandwidth and credits allow. At most one flit per cycle (the local
    /// port is one flit wide).
    pub fn next_flit(&mut self, _now: Cycle) -> Option<Flit> {
        if self.current.is_none() {
            if self.inject_queue.is_empty() {
                return None;
            }
            let mut vc_mask = 0u64;
            debug_assert!(self.credits.len() <= 64, "NIC VC mask packs VCs into a u64");
            let sel = self.router_active_vcs.min(self.inject_vc_limit);
            for v in 0..sel as usize {
                if self.credits[v] > 0 {
                    vc_mask |= 1 << v;
                }
            }
            let vc = self.vc_rr.grant_mask(vc_mask)?;
            let packet = self.inject_queue.pop_front().expect("checked non-empty");
            self.queued_flits -= packet.len_flits as usize;
            self.current = Some(Stream {
                packet,
                next: 0,
                vc: vc as u8,
            });
        }
        let s = self.current.as_mut().expect("stream present");
        if self.credits[s.vc as usize] == 0 {
            return None; // head-of-line stall at the source
        }
        let mut flit = Flit::of_packet_in(&self.arena, &s.packet, s.next, Switching::Packet);
        flit.vc = s.vc;
        self.credits[s.vc as usize] -= 1;
        s.next += 1;
        if s.next == s.packet.len_flits {
            self.current = None;
        }
        self.flits_injected += 1;
        Some(flit)
    }

    /// Accept an ejected flit; completes a packet when its tail arrives.
    pub fn accept_ejected(&mut self, now: Cycle, flit: Flit) {
        self.rx.bump(flit.packet);
        self.rx_flits += 1;
        if flit.kind().is_tail() {
            let done = self.rx.remove(flit.packet).expect("just inserted");
            self.rx_flits -= done as usize;
            // Resolve the payload handle before releasing it: delivery ends
            // the flit's lifetime, so this is where the arena slot is freed.
            let payload = if flit.config.is_some() {
                Some(self.arena.get(flit.config))
            } else {
                None
            };
            self.arena.free(flit.config);
            self.delivered.push(DeliveredPacket {
                id: flit.packet,
                src: flit.src(),
                dst: flit.dst(),
                class: flit.class(),
                kind: DeliveredKind::of_config(payload),
                switching: flit.switching(),
                len_flits: flit.seq + 1,
                created: flit.created,
                delivered: now,
                measured: flit.measured(),
            });
        }
    }

    /// Hand completed packets to the caller.
    pub fn drain_delivered(&mut self, sink: &mut Vec<DeliveredPacket>) {
        sink.append(&mut self.delivered);
    }

    /// Flits still owned by the NIC (queued, mid-stream, or partially
    /// reassembled) — used for drain detection.
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(
            self.queued_flits,
            self.inject_queue.iter().map(|p| p.len_flits as usize).sum(),
            "queued-flit counter drifted"
        );
        debug_assert_eq!(self.rx_flits, self.rx.total(), "rx-flit counter drifted");
        let streaming = self
            .current
            .as_ref()
            .map(|s| (s.packet.len_flits - s.next) as usize)
            .unwrap_or(0);
        self.queued_flits + streaming + self.rx_flits
    }

    /// Length of the source queue in packets (saturation detection).
    pub fn queue_len(&self) -> usize {
        self.inject_queue.len() + usize::from(self.current.is_some())
    }

    /// Serialise all mutable NIC state (everything except the identity
    /// and configuration set at construction).
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        self.inject_queue.save(w);
        self.current.save(w);
        self.credits.save(w);
        w.u8(self.router_active_vcs);
        w.u8(self.inject_vc_limit);
        self.vc_rr.save(w);
        self.rx.save(w);
        self.delivered.save(w);
        w.u64(self.flits_injected);
        w.usize(self.queued_flits);
        w.usize(self.rx_flits);
    }

    /// Inverse of [`Nic::save_state`], into a freshly constructed NIC of
    /// the same configuration.
    pub fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        self.inject_queue = Snap::load(r)?;
        self.current = Snap::load(r)?;
        self.credits = Snap::load(r)?;
        self.router_active_vcs = r.u8()?;
        self.inject_vc_limit = r.u8()?;
        self.vc_rr = Snap::load(r)?;
        self.rx = Snap::load(r)?;
        self.delivered = Snap::load(r)?;
        self.flits_injected = r.u64()?;
        self.queued_flits = r.usize()?;
        self.rx_flits = r.usize()?;
        Ok(())
    }

    /// Purge every trace of `pid` after the packet lost a flit to a link
    /// fault: cancel a mid-injection stream (the network already counts
    /// the packet lost) and drop any partial reassembly so the rx buffer
    /// cannot wait forever for flits that no longer exist. Returns the
    /// number of flits discarded here.
    pub fn abort_packet(&mut self, pid: PacketId) -> usize {
        let mut dropped = 0;
        if self.current.as_ref().is_some_and(|s| s.packet.id == pid) {
            let s = self.current.take().expect("just matched");
            dropped += (s.packet.len_flits - s.next) as usize;
        }
        if let Some(count) = self.rx.remove(pid) {
            self.rx_flits -= count as usize;
            dropped += count as usize;
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{MsgClass, PacketId};

    fn nic() -> Nic {
        Nic::new(NodeId(0), &RouterConfig::default())
    }

    fn pkt(id: u64, len: u8) -> Packet {
        Packet::data(PacketId(id), NodeId(0), NodeId(5), len, 0)
    }

    #[test]
    fn serialises_one_flit_per_call() {
        let mut n = nic();
        n.enqueue(pkt(1, 5));
        let mut seqs = Vec::new();
        while let Some(f) = n.next_flit(0) {
            seqs.push(f.seq);
            if seqs.len() > 10 {
                break;
            }
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(n.occupancy(), 0);
        assert_eq!(n.flits_injected, 5);
    }

    #[test]
    fn respects_credits() {
        let mut n = nic();
        n.enqueue(pkt(1, 5));
        // Only the head is credit-funded if we pre-drain VC credits.
        // Stream starts on some VC v; exhaust it after 2 flits.
        let f0 = n.next_flit(0).unwrap();
        let vc = f0.vc;
        let _f1 = n.next_flit(0).unwrap();
        n.credits[vc as usize] = 0;
        assert!(n.next_flit(0).is_none(), "must stall without credits");
        n.credit(vc);
        assert!(n.next_flit(0).is_some());
    }

    #[test]
    fn packets_do_not_interleave() {
        let mut n = nic();
        n.enqueue(pkt(1, 3));
        n.enqueue(pkt(2, 3));
        let mut ids = Vec::new();
        while let Some(f) = n.next_flit(0) {
            ids.push((f.packet, f.seq));
        }
        assert_eq!(
            ids,
            vec![
                (PacketId(1), 0),
                (PacketId(1), 1),
                (PacketId(1), 2),
                (PacketId(2), 0),
                (PacketId(2), 1),
                (PacketId(2), 2)
            ]
        );
    }

    #[test]
    fn gated_vcs_not_used_for_new_packets() {
        let mut n = nic();
        n.set_router_active_vcs(1);
        n.enqueue(pkt(1, 1));
        let f = n.next_flit(0).unwrap();
        assert_eq!(f.vc, 0);
    }

    #[test]
    fn reassembly_and_delivery() {
        let mut n = nic();
        let p = Packet::data(PacketId(9), NodeId(3), NodeId(0), 4, 10);
        for s in 0..4 {
            let f = Flit::of_packet(&p, s, Switching::Circuit);
            n.accept_ejected(50 + s as Cycle, f);
        }
        let mut sink = Vec::new();
        n.drain_delivered(&mut sink);
        assert_eq!(sink.len(), 1);
        let d = &sink[0];
        assert_eq!(d.delivered, 53);
        assert_eq!(d.created, 10);
        assert_eq!(d.switching, Switching::Circuit);
        assert_eq!(d.class, MsgClass::Data);
        assert_eq!(n.occupancy(), 0);
    }

    #[test]
    fn delivered_kind_classifies_config_messages() {
        use crate::flit::{ConfigKind, SetupInfo};
        use crate::node::DeliveredKind;
        let info = SetupInfo {
            src: NodeId(1),
            dst: NodeId(0),
            slot: 0,
            duration: 4,
            path_id: 3,
        };
        for (id, kind, want) in [
            (1u64, ConfigKind::Setup(info), DeliveredKind::Setup),
            (2, ConfigKind::Teardown(info), DeliveredKind::Teardown),
            (
                3,
                ConfigKind::Ack {
                    info,
                    success: true,
                },
                DeliveredKind::Ack,
            ),
        ] {
            let mut n = nic();
            let p = Packet::config(PacketId(id), NodeId(1), NodeId(0), kind, 0);
            let f = Flit::of_packet_in(n.arena(), &p, 0, Switching::Packet);
            n.accept_ejected(9, f);
            assert_eq!(n.arena().live(), 0, "payload freed on delivery");
            let mut sink = Vec::new();
            n.drain_delivered(&mut sink);
            assert_eq!(sink[0].kind, want);
        }
        // Data packets classify as Data even though their tail carries no
        // payload.
        let mut n = nic();
        let p = pkt(9, 2);
        for s in 0..2 {
            n.accept_ejected(5, Flit::of_packet(&p, s, Switching::Packet));
        }
        let mut sink = Vec::new();
        n.drain_delivered(&mut sink);
        assert_eq!(sink[0].kind, DeliveredKind::Data);
    }

    #[test]
    fn config_priority_queueing() {
        let mut n = nic();
        n.enqueue(pkt(1, 5));
        n.enqueue_front(Packet::config(
            PacketId(2),
            NodeId(0),
            NodeId(5),
            crate::flit::ConfigKind::Setup(crate::flit::SetupInfo {
                src: NodeId(0),
                dst: NodeId(5),
                slot: 0,
                duration: 4,
                path_id: 0,
            }),
            0,
        ));
        let f = n.next_flit(0).unwrap();
        assert_eq!(f.packet, PacketId(2));
        assert_eq!(f.class(), MsgClass::Config);
    }
}
