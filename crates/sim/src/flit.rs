//! Packets, flits and the path-configuration message vocabulary.
//!
//! The paper's routers exchange three kinds of traffic:
//!
//! * **data packets** — 5-flit packet-switched packets (a 64 B cache line in
//!   16 B flits plus a header flit) or 4-flit circuit-switched packets (the
//!   header is not needed on a reserved path);
//! * **configuration packets** — single-flit `setup` / `teardown` / `ack`
//!   messages that manage circuit-switched paths and always travel through
//!   the packet-switched network (§II-B);
//! * **circuit-switched flits** — flits that follow a reserved path without
//!   buffering or routing.

use std::sync::Arc;

use crate::geometry::NodeId;
use crate::Cycle;

/// Unique identifier of a packet within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl std::fmt::Debug for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Message class, which selects the routing algorithm (Table I: minimal
/// adaptive routing for configuration packets, X-Y for everything else).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Ordinary data traffic.
    Data,
    /// Path-configuration traffic (`setup`/`teardown`/`ack`).
    Config,
}

/// How a packet traverses the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Switching {
    /// Buffered/routed at every hop.
    Packet,
    /// Follows a reserved path (TDM slots or an SDM plane).
    Circuit,
}

/// Identification of a circuit-switched path reservation.
///
/// Carried by `setup`, `teardown` and `ack` messages. `slot` is interpreted
/// by the switching scheme: the initial time-slot for TDM, the plane index
/// for SDM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SetupInfo {
    /// Source node requesting the path.
    pub src: NodeId,
    /// Destination node of the path.
    pub dst: NodeId,
    /// Initial time-slot (TDM) or plane id (SDM) at the *current* router.
    pub slot: u16,
    /// Number of consecutive slots reserved per period (§II-B: 4 data slots,
    /// +1 header slot when vicinity-sharing is enabled).
    pub duration: u8,
    /// Unique id of this path attempt (lets `teardown` find exactly the
    /// entries its `setup` created).
    pub path_id: u64,
}

/// The three configuration message types of §II-B.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigKind {
    /// Create a circuit-switched connection.
    Setup(SetupInfo),
    /// Destroy an existing (possibly partially constructed) connection.
    Teardown(SetupInfo),
    /// Setup success/failure notification travelling back to the source.
    Ack { info: SetupInfo, success: bool },
}

impl ConfigKind {
    pub fn info(&self) -> &SetupInfo {
        match self {
            ConfigKind::Setup(i) | ConfigKind::Teardown(i) => i,
            ConfigKind::Ack { info, .. } => info,
        }
    }
}

/// A packet, as created by a traffic source and handed to a NIC.
#[derive(Clone, Debug)]
pub struct Packet {
    pub id: PacketId,
    pub src: NodeId,
    pub dst: NodeId,
    /// Number of flits (Table I: 1 configuration, 4 circuit-switched,
    /// 5 packet-switched or vicinity-shared circuit-switched).
    pub len_flits: u8,
    pub class: MsgClass,
    /// Cycle the packet was created at the source (queueing delay at the NIC
    /// counts toward its latency, as in open-loop measurement).
    pub created: Cycle,
    /// Configuration payload, present iff `class == Config`.
    pub config: Option<ConfigKind>,
    /// Set when the packet's *measured* latency should be recorded (packets
    /// created during warm-up or drain phases are excluded).
    pub measured: bool,
    /// Whether the source may circuit-switch this message. The paper's
    /// heterogeneous policy packet-switches all CPU traffic and only
    /// hybrid-switches GPU messages with sufficient warp slack (§V-A2).
    pub cs_eligible: bool,
}

impl Packet {
    /// A data packet of `len_flits` flits.
    pub fn data(id: PacketId, src: NodeId, dst: NodeId, len_flits: u8, created: Cycle) -> Self {
        Packet {
            id,
            src,
            dst,
            len_flits,
            class: MsgClass::Data,
            created,
            config: None,
            measured: true,
            cs_eligible: true,
        }
    }

    /// A single-flit configuration packet.
    pub fn config(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        kind: ConfigKind,
        created: Cycle,
    ) -> Self {
        Packet {
            id,
            src,
            dst,
            len_flits: 1,
            class: MsgClass::Config,
            created,
            config: Some(kind),
            measured: false,
            cs_eligible: false,
        }
    }
}

/// Position of a flit within its packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlitKind {
    Head,
    Body,
    Tail,
    /// Single-flit packet.
    HeadTail,
}

impl FlitKind {
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }

    /// Kind of flit `seq` in a packet of `len` flits.
    pub fn for_seq(seq: u8, len: u8) -> FlitKind {
        match (seq, len) {
            (0, 1) => FlitKind::HeadTail,
            (0, _) => FlitKind::Head,
            (s, l) if s + 1 == l => FlitKind::Tail,
            _ => FlitKind::Body,
        }
    }
}

/// A flow-control unit travelling on a link.
#[derive(Clone, Debug)]
pub struct Flit {
    pub packet: PacketId,
    pub kind: FlitKind,
    pub seq: u8,
    pub src: NodeId,
    pub dst: NodeId,
    pub class: MsgClass,
    pub switching: Switching,
    /// Virtual channel the flit currently occupies (packet-switched only;
    /// circuit-switched flits are never buffered).
    pub vc: u8,
    /// Creation cycle of the parent packet (for latency accounting).
    pub created: Cycle,
    /// Whether the parent packet's latency is measured.
    pub measured: bool,
    /// Hops traversed so far.
    pub hops: u8,
    /// Configuration payload (head flit of configuration packets only).
    /// Shared, not owned: flits are copied at every pipeline stage and on
    /// every wire hop, so the payload is interned behind an [`Arc`] to make
    /// those copies a pointer bump instead of a heap clone.
    pub config: Option<Arc<ConfigKind>>,
    /// Final destination after a vicinity-sharing hop-off. When a message
    /// rides a circuit reserved to `dst` but is really bound for a neighbour
    /// of `dst` (§III-A2), `dst` names the circuit endpoint and `true_dst`
    /// the real destination the endpoint must forward to.
    pub true_dst: Option<NodeId>,
    /// Route decision pre-computed by configuration-message processing: when
    /// a hybrid router reserves slots for a `setup` flit on arrival, the flit
    /// must later leave through exactly the reserved output port. Consumed
    /// (taken) by the route-computation stage.
    pub forced_out: Option<crate::geometry::Port>,
}

impl Flit {
    /// Build the `seq`-th flit of `packet`.
    pub fn of_packet(packet: &Packet, seq: u8, switching: Switching) -> Flit {
        debug_assert!(seq < packet.len_flits);
        let kind = FlitKind::for_seq(seq, packet.len_flits);
        Flit {
            packet: packet.id,
            kind,
            seq,
            src: packet.src,
            dst: packet.dst,
            class: packet.class,
            switching,
            vc: 0,
            created: packet.created,
            measured: packet.measured,
            hops: 0,
            config: if kind.is_head() {
                packet.config.clone().map(Arc::new)
            } else {
                None
            },
            true_dst: None,
            forced_out: None,
        }
    }

    /// The node this flit must be delivered to next: the vicinity hop-off
    /// point if set, otherwise the packet destination.
    pub fn route_dst(&self) -> NodeId {
        self.dst
    }
}

/// A credit returned upstream when a buffered flit leaves an input VC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Credit {
    pub vc: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_kinds_for_lengths() {
        assert_eq!(FlitKind::for_seq(0, 1), FlitKind::HeadTail);
        assert_eq!(FlitKind::for_seq(0, 5), FlitKind::Head);
        assert_eq!(FlitKind::for_seq(2, 5), FlitKind::Body);
        assert_eq!(FlitKind::for_seq(4, 5), FlitKind::Tail);
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
    }

    #[test]
    fn packet_to_flits() {
        let p = Packet::data(PacketId(7), NodeId(0), NodeId(5), 5, 100);
        let flits: Vec<Flit> = (0..5)
            .map(|s| Flit::of_packet(&p, s, Switching::Packet))
            .collect();
        assert!(flits[0].kind.is_head());
        assert!(flits[4].kind.is_tail());
        assert!(flits
            .iter()
            .all(|f| f.packet == PacketId(7) && f.created == 100));
    }

    #[test]
    fn config_payload_on_head_only() {
        let info = SetupInfo {
            src: NodeId(0),
            dst: NodeId(3),
            slot: 2,
            duration: 4,
            path_id: 1,
        };
        let p = Packet::config(
            PacketId(1),
            NodeId(0),
            NodeId(3),
            ConfigKind::Setup(info),
            0,
        );
        let f = Flit::of_packet(&p, 0, Switching::Packet);
        assert!(f.config.is_some());
        assert_eq!(f.config.as_deref().unwrap().info().slot, 2);
        assert!(!f.measured);
    }

    #[test]
    fn config_kind_info_access() {
        let info = SetupInfo {
            src: NodeId(1),
            dst: NodeId(2),
            slot: 0,
            duration: 4,
            path_id: 9,
        };
        for k in [
            ConfigKind::Setup(info),
            ConfigKind::Teardown(info),
            ConfigKind::Ack {
                info,
                success: false,
            },
        ] {
            assert_eq!(k.info().path_id, 9);
        }
    }
}
