//! Packets, flits and the path-configuration message vocabulary.
//!
//! The paper's routers exchange three kinds of traffic:
//!
//! * **data packets** — 5-flit packet-switched packets (a 64 B cache line in
//!   16 B flits plus a header flit) or 4-flit circuit-switched packets (the
//!   header is not needed on a reserved path);
//! * **configuration packets** — single-flit `setup` / `teardown` / `ack`
//!   messages that manage circuit-switched paths and always travel through
//!   the packet-switched network (§II-B);
//! * **circuit-switched flits** — flits that follow a reserved path without
//!   buffering or routing.
//!
//! [`Flit`] is plain-old-data: 32 bytes, `Copy`, no pointers. Pipeline
//! stages, wire ring buffers, NIC queues and CS latches move flits by
//! memcpy; the only heap-adjacent datum — a configuration payload on the
//! head flit of a `setup`/`teardown`/`ack` — lives in the network's
//! [`ConfigArena`] and is carried as a 4-byte [`ConfigRef`] handle.

use crate::arena::{ConfigArena, ConfigRef};
use crate::geometry::{NodeId, Port};
use crate::Cycle;

/// Unique identifier of a packet within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl std::fmt::Debug for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Message class, which selects the routing algorithm (Table I: minimal
/// adaptive routing for configuration packets, X-Y for everything else).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Ordinary data traffic.
    Data,
    /// Path-configuration traffic (`setup`/`teardown`/`ack`).
    Config,
}

/// How a packet traverses the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Switching {
    /// Buffered/routed at every hop.
    Packet,
    /// Follows a reserved path (TDM slots or an SDM plane).
    Circuit,
}

/// Identification of a circuit-switched path reservation.
///
/// Carried by `setup`, `teardown` and `ack` messages. `slot` is interpreted
/// by the switching scheme: the initial time-slot for TDM, the plane index
/// for SDM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SetupInfo {
    /// Source node requesting the path.
    pub src: NodeId,
    /// Destination node of the path.
    pub dst: NodeId,
    /// Initial time-slot (TDM) or plane id (SDM) at the *current* router.
    pub slot: u16,
    /// Number of consecutive slots reserved per period (§II-B: 4 data slots,
    /// +1 header slot when vicinity-sharing is enabled).
    pub duration: u8,
    /// Unique id of this path attempt (lets `teardown` find exactly the
    /// entries its `setup` created).
    pub path_id: u64,
}

/// The three configuration message types of §II-B.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigKind {
    /// Create a circuit-switched connection.
    Setup(SetupInfo),
    /// Destroy an existing (possibly partially constructed) connection.
    Teardown(SetupInfo),
    /// Setup success/failure notification travelling back to the source.
    Ack { info: SetupInfo, success: bool },
}

impl ConfigKind {
    pub fn info(&self) -> &SetupInfo {
        match self {
            ConfigKind::Setup(i) | ConfigKind::Teardown(i) => i,
            ConfigKind::Ack { info, .. } => info,
        }
    }
}

/// A packet, as created by a traffic source and handed to a NIC.
#[derive(Clone, Debug)]
pub struct Packet {
    pub id: PacketId,
    pub src: NodeId,
    pub dst: NodeId,
    /// Number of flits (Table I: 1 configuration, 4 circuit-switched,
    /// 5 packet-switched or vicinity-shared circuit-switched).
    pub len_flits: u8,
    pub class: MsgClass,
    /// Cycle the packet was created at the source (queueing delay at the NIC
    /// counts toward its latency, as in open-loop measurement).
    pub created: Cycle,
    /// Configuration payload, present iff `class == Config`.
    pub config: Option<ConfigKind>,
    /// Set when the packet's *measured* latency should be recorded (packets
    /// created during warm-up or drain phases are excluded).
    pub measured: bool,
    /// Whether the source may circuit-switch this message. The paper's
    /// heterogeneous policy packet-switches all CPU traffic and only
    /// hybrid-switches GPU messages with sufficient warp slack (§V-A2).
    pub cs_eligible: bool,
}

impl Packet {
    /// A data packet of `len_flits` flits.
    pub fn data(id: PacketId, src: NodeId, dst: NodeId, len_flits: u8, created: Cycle) -> Self {
        Packet {
            id,
            src,
            dst,
            len_flits,
            class: MsgClass::Data,
            created,
            config: None,
            measured: true,
            cs_eligible: true,
        }
    }

    /// A single-flit configuration packet.
    pub fn config(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        kind: ConfigKind,
        created: Cycle,
    ) -> Self {
        Packet {
            id,
            src,
            dst,
            len_flits: 1,
            class: MsgClass::Config,
            created,
            config: Some(kind),
            measured: false,
            cs_eligible: false,
        }
    }
}

/// Position of a flit within its packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FlitKind {
    Head = 0,
    Body = 1,
    Tail = 2,
    /// Single-flit packet.
    HeadTail = 3,
}

impl FlitKind {
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }

    /// Kind of flit `seq` in a packet of `len` flits.
    pub fn for_seq(seq: u8, len: u8) -> FlitKind {
        match (seq, len) {
            (0, 1) => FlitKind::HeadTail,
            (0, _) => FlitKind::Head,
            (s, l) if s + 1 == l => FlitKind::Tail,
            _ => FlitKind::Body,
        }
    }
}

/// Sentinel for "no node" in the packed 16-bit node fields. [`Mesh::new`]
/// caps meshes at 65534 nodes so every real id fits below it.
///
/// [`Mesh::new`]: crate::topology::Topology::new
const NO_NODE: u16 = u16::MAX;

// Bit layout of `Flit::flags`.
const KIND_MASK: u8 = 0b0000_0011; // FlitKind discriminant
const CLASS_BIT: u8 = 1 << 2; // set = Config
const SWITCH_BIT: u8 = 1 << 3; // set = Circuit
const MEASURED_BIT: u8 = 1 << 4;
const FORCED_SHIFT: u32 = 5; // bits 5-7: forced port + 1, 0 = none

/// A flow-control unit travelling on a link.
///
/// 32 bytes, `Copy`, niche-free: the former `Option<Arc<ConfigKind>>` /
/// `Option<NodeId>` / `Option<Port>` fields are packed into a
/// [`ConfigRef`] handle, a `u16` with a `NO_NODE` sentinel, and three
/// bits of the flags byte. The packed fields are private; accessors
/// present the same `Option`-shaped API the routers always used.
#[derive(Clone, Copy, Debug)]
pub struct Flit {
    pub packet: PacketId,
    /// Creation cycle of the parent packet (for latency accounting).
    pub created: Cycle,
    /// Configuration payload handle (head flit of configuration packets
    /// only; [`ConfigRef::NONE`] otherwise). The payload itself lives in
    /// the network's [`ConfigArena`].
    pub config: ConfigRef,
    src: u16,
    dst: u16,
    /// Vicinity hop-off destination, `NO_NODE` when absent.
    true_dst: u16,
    pub seq: u8,
    /// Virtual channel the flit currently occupies (packet-switched only;
    /// circuit-switched flits are never buffered).
    pub vc: u8,
    /// Hops traversed so far.
    pub hops: u8,
    /// Packed kind / class / switching / measured / forced-out.
    flags: u8,
}

const _: () = assert!(
    std::mem::size_of::<Flit>() <= 32,
    "Flit must stay a 32-byte POD (see DESIGN.md §12)"
);
const _: () = {
    const fn assert_copy<T: Copy>() {}
    assert_copy::<Flit>();
    assert_copy::<Credit>();
    assert_copy::<ConfigKind>();
};

#[inline]
fn node16(n: NodeId) -> u16 {
    debug_assert!(n.0 < NO_NODE as u32, "NodeId exceeds packed-flit range");
    n.0 as u16
}

impl Flit {
    fn build(packet: &Packet, seq: u8, switching: Switching, config: ConfigRef) -> Flit {
        debug_assert!(seq < packet.len_flits);
        let kind = FlitKind::for_seq(seq, packet.len_flits);
        let mut flags = kind as u8;
        if packet.class == MsgClass::Config {
            flags |= CLASS_BIT;
        }
        if switching == Switching::Circuit {
            flags |= SWITCH_BIT;
        }
        if packet.measured {
            flags |= MEASURED_BIT;
        }
        Flit {
            packet: packet.id,
            created: packet.created,
            config,
            src: node16(packet.src),
            dst: node16(packet.dst),
            true_dst: NO_NODE,
            seq,
            vc: 0,
            hops: 0,
            flags,
        }
    }

    /// Build the `seq`-th flit of a *data* packet. Configuration packets
    /// carry an arena payload and must use [`Flit::of_packet_in`].
    pub fn of_packet(packet: &Packet, seq: u8, switching: Switching) -> Flit {
        debug_assert!(
            packet.config.is_none(),
            "configuration packets must be serialised via of_packet_in"
        );
        Flit::build(packet, seq, switching, ConfigRef::NONE)
    }

    /// Build the `seq`-th flit of `packet`, interning a configuration
    /// payload (head flits only) into `arena`.
    pub fn of_packet_in(
        arena: &ConfigArena,
        packet: &Packet,
        seq: u8,
        switching: Switching,
    ) -> Flit {
        let kind = FlitKind::for_seq(seq, packet.len_flits);
        let config = match &packet.config {
            Some(k) if kind.is_head() => arena.alloc(*k),
            _ => ConfigRef::NONE,
        };
        Flit::build(packet, seq, switching, config)
    }

    #[inline]
    pub fn src(&self) -> NodeId {
        NodeId(self.src as u32)
    }

    #[inline]
    pub fn dst(&self) -> NodeId {
        NodeId(self.dst as u32)
    }

    #[inline]
    pub fn set_dst(&mut self, dst: NodeId) {
        self.dst = node16(dst);
    }

    #[inline]
    pub fn kind(&self) -> FlitKind {
        match self.flags & KIND_MASK {
            0 => FlitKind::Head,
            1 => FlitKind::Body,
            2 => FlitKind::Tail,
            _ => FlitKind::HeadTail,
        }
    }

    #[inline]
    pub fn class(&self) -> MsgClass {
        if self.flags & CLASS_BIT != 0 {
            MsgClass::Config
        } else {
            MsgClass::Data
        }
    }

    #[inline]
    pub fn switching(&self) -> Switching {
        if self.flags & SWITCH_BIT != 0 {
            Switching::Circuit
        } else {
            Switching::Packet
        }
    }

    #[inline]
    pub fn measured(&self) -> bool {
        self.flags & MEASURED_BIT != 0
    }

    /// Final destination after a vicinity-sharing hop-off. When a message
    /// rides a circuit reserved to `dst` but is really bound for a
    /// neighbour of `dst` (§III-A2), `dst` names the circuit endpoint and
    /// `true_dst` the real destination the endpoint must forward to.
    #[inline]
    pub fn true_dst(&self) -> Option<NodeId> {
        if self.true_dst == NO_NODE {
            None
        } else {
            Some(NodeId(self.true_dst as u32))
        }
    }

    #[inline]
    pub fn set_true_dst(&mut self, dst: Option<NodeId>) {
        self.true_dst = match dst {
            Some(n) => node16(n),
            None => NO_NODE,
        };
    }

    /// Route decision pre-computed by configuration-message processing:
    /// when a hybrid router reserves slots for a `setup` flit on arrival,
    /// the flit must later leave through exactly the reserved output port.
    /// Consumed (taken) by the route-computation stage.
    #[inline]
    pub fn forced_out(&self) -> Option<Port> {
        match self.flags >> FORCED_SHIFT {
            0 => None,
            p => Some(Port::from_index(p as usize - 1)),
        }
    }

    #[inline]
    pub fn set_forced_out(&mut self, port: Option<Port>) {
        let bits = match port {
            Some(p) => p.index() as u8 + 1,
            None => 0,
        };
        self.flags = (self.flags & !(0b111 << FORCED_SHIFT)) | (bits << FORCED_SHIFT);
    }

    #[inline]
    pub fn take_forced_out(&mut self) -> Option<Port> {
        let out = self.forced_out();
        self.flags &= !(0b111 << FORCED_SHIFT);
        out
    }

    /// The node this flit must be delivered to next: the vicinity hop-off
    /// point if set, otherwise the packet destination.
    #[inline]
    pub fn route_dst(&self) -> NodeId {
        self.true_dst().unwrap_or_else(|| self.dst())
    }
}

/// A credit returned upstream when a buffered flit leaves an input VC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Credit {
    pub vc: u8,
}

// ---------------------------------------------------------------------------
// Snapshot encodings (see DESIGN.md §14). Enum tags are explicit and
// stable; the packed `Flit` fields are written raw, so a snapshot is
// bit-faithful to the wire representation.

use crate::impl_snap;
use crate::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};

impl Snap for PacketId {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.0);
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        Ok(PacketId(r.u64()?))
    }
}

impl Snap for MsgClass {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(match self {
            MsgClass::Data => 0,
            MsgClass::Config => 1,
        });
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(MsgClass::Data),
            1 => Ok(MsgClass::Config),
            _ => Err(SnapshotError::Corrupt("MsgClass tag")),
        }
    }
}

impl Snap for Switching {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(match self {
            Switching::Packet => 0,
            Switching::Circuit => 1,
        });
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(Switching::Packet),
            1 => Ok(Switching::Circuit),
            _ => Err(SnapshotError::Corrupt("Switching tag")),
        }
    }
}

impl_snap!(SetupInfo {
    src,
    dst,
    slot,
    duration,
    path_id
});

impl Snap for ConfigKind {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            ConfigKind::Setup(info) => {
                w.u8(0);
                info.save(w);
            }
            ConfigKind::Teardown(info) => {
                w.u8(1);
                info.save(w);
            }
            ConfigKind::Ack { info, success } => {
                w.u8(2);
                info.save(w);
                w.bool(*success);
            }
        }
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(ConfigKind::Setup(SetupInfo::load(r)?)),
            1 => Ok(ConfigKind::Teardown(SetupInfo::load(r)?)),
            2 => Ok(ConfigKind::Ack {
                info: SetupInfo::load(r)?,
                success: r.bool()?,
            }),
            _ => Err(SnapshotError::Corrupt("ConfigKind tag")),
        }
    }
}

impl_snap!(Packet {
    id,
    src,
    dst,
    len_flits,
    class,
    created,
    config,
    measured,
    cs_eligible
});

impl_snap!(Flit {
    packet,
    created,
    config,
    src,
    dst,
    true_dst,
    seq,
    vc,
    hops,
    flags
});

impl Snap for Credit {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(self.vc);
    }
    fn load(r: &mut SnapshotReader) -> Result<Self, SnapshotError> {
        Ok(Credit { vc: r.u8()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_kinds_for_lengths() {
        assert_eq!(FlitKind::for_seq(0, 1), FlitKind::HeadTail);
        assert_eq!(FlitKind::for_seq(0, 5), FlitKind::Head);
        assert_eq!(FlitKind::for_seq(2, 5), FlitKind::Body);
        assert_eq!(FlitKind::for_seq(4, 5), FlitKind::Tail);
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
    }

    #[test]
    fn packet_to_flits() {
        let p = Packet::data(PacketId(7), NodeId(0), NodeId(5), 5, 100);
        let flits: Vec<Flit> = (0..5)
            .map(|s| Flit::of_packet(&p, s, Switching::Packet))
            .collect();
        assert!(flits[0].kind().is_head());
        assert!(flits[4].kind().is_tail());
        assert!(flits
            .iter()
            .all(|f| f.packet == PacketId(7) && f.created == 100));
        assert!(flits.iter().all(|f| f.config.is_none()));
    }

    #[test]
    fn config_payload_on_head_only() {
        let arena = ConfigArena::new();
        let info = SetupInfo {
            src: NodeId(0),
            dst: NodeId(3),
            slot: 2,
            duration: 4,
            path_id: 1,
        };
        let p = Packet::config(
            PacketId(1),
            NodeId(0),
            NodeId(3),
            ConfigKind::Setup(info),
            0,
        );
        let f = Flit::of_packet_in(&arena, &p, 0, Switching::Packet);
        assert!(f.config.is_some());
        assert_eq!(arena.get(f.config).info().slot, 2);
        assert!(!f.measured());
        assert_eq!(f.class(), MsgClass::Config);
    }

    #[test]
    fn config_kind_info_access() {
        let info = SetupInfo {
            src: NodeId(1),
            dst: NodeId(2),
            slot: 0,
            duration: 4,
            path_id: 9,
        };
        for k in [
            ConfigKind::Setup(info),
            ConfigKind::Teardown(info),
            ConfigKind::Ack {
                info,
                success: false,
            },
        ] {
            assert_eq!(k.info().path_id, 9);
        }
    }

    #[test]
    fn packed_fields_roundtrip() {
        let p = Packet::data(PacketId(3), NodeId(12), NodeId(40), 4, 77);
        let mut f = Flit::of_packet(&p, 0, Switching::Circuit);
        assert_eq!(f.src(), NodeId(12));
        assert_eq!(f.dst(), NodeId(40));
        assert_eq!(f.switching(), Switching::Circuit);
        assert_eq!(f.class(), MsgClass::Data);
        assert!(f.measured());
        assert_eq!(f.true_dst(), None);
        assert_eq!(f.forced_out(), None);

        for port in Port::ALL {
            f.set_forced_out(Some(port));
            assert_eq!(f.forced_out(), Some(port));
            // forced_out must not disturb its flag neighbours.
            assert_eq!(f.kind(), FlitKind::Head);
            assert!(f.measured());
        }
        assert_eq!(f.take_forced_out(), Some(Port::West));
        assert_eq!(f.forced_out(), None);

        f.set_true_dst(Some(NodeId(41)));
        assert_eq!(f.true_dst(), Some(NodeId(41)));
        f.set_true_dst(None);
        assert_eq!(f.true_dst(), None);

        f.set_dst(NodeId(2));
        assert_eq!(f.dst(), NodeId(2));
    }

    #[test]
    fn route_dst_honours_hop_off() {
        let p = Packet::data(PacketId(8), NodeId(1), NodeId(6), 5, 0);
        let mut f = Flit::of_packet(&p, 0, Switching::Circuit);
        // No hop-off: route to the packet destination.
        assert_eq!(f.route_dst(), NodeId(6));
        // Vicinity sharing: the circuit ends at 6 but the message is for 7;
        // routing must aim at the hop-off field, not the circuit endpoint.
        f.set_true_dst(Some(NodeId(7)));
        assert_eq!(f.route_dst(), NodeId(7));
    }
}
