//! Exhaustive phase-2 schedule permutation (DESIGN.md §17).
//!
//! The determinism contract (see `network.rs` module docs) rests on phase
//! 2 — the node-stepping loop — being order-independent: each node reads
//! only its own slab rings, NIC, and outbox. This test *proves* the claim
//! on a 2×2 fabric by enumerating all 4! = 24 node-visit permutations and
//! asserting observational equivalence with the canonical ascending
//! order: identical delivery stats and a byte-identical `NOCSNAP`
//! checkpoint after every run. Runs only with `--features exhaustive`
//! (wired into `scripts/ci.sh`).
#![cfg(feature = "exhaustive")]

use noc_sim::{Mesh, Network, NetworkConfig, NodeId, Packet, PacketId, PacketNode};

/// Deterministic traffic: every cycle in the injection window, each node
/// sends a packet across the diagonal (transpose on 2×2) plus a rotating
/// neighbour target, mixing short and long packets so wormholes interleave
/// and every VC/ring sees multi-cycle occupancy.
fn drive(net: &mut Network<PacketNode>, cycles: u64) {
    let n = 4u64;
    let mut next_id = 0u64;
    for c in 0..cycles {
        if c < cycles / 2 {
            for s in 0..n {
                let dst = if c % 3 == 0 { (s + 1) % n } else { n - 1 - s };
                if dst == s {
                    continue;
                }
                let len = 1 + ((s + c) % 5) as u8;
                let pkt = Packet::data(
                    PacketId(next_id),
                    NodeId(s as u32),
                    NodeId(dst as u32),
                    len,
                    net.now(),
                );
                next_id += 1;
                net.inject(NodeId(s as u32), pkt);
            }
        }
        net.step();
    }
}

/// Heap's algorithm, iterative: all permutations of `0..4`.
fn permutations() -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut a = vec![0usize, 1, 2, 3];
    let mut c = [0usize; 4];
    out.push(a.clone());
    let mut i = 0;
    while i < 4 {
        if c[i] < i {
            if i % 2 == 0 {
                a.swap(0, i);
            } else {
                a.swap(c[i], i);
            }
            out.push(a.clone());
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    assert_eq!(out.len(), 24);
    out
}

fn run(order: Option<Vec<usize>>) -> (Vec<u8>, u64, u64) {
    let mesh = Mesh::square(2);
    let cfg = NetworkConfig::with_mesh(mesh);
    let mut net = Network::new(mesh, |id| PacketNode::new(id, &cfg, None));
    net.set_step_order(order);
    drive(&mut net, 400);
    let snap = net.checkpoint().expect("checkpoint");
    (
        snap.as_bytes().to_vec(),
        net.stats.packets_delivered,
        net.stats.flits_delivered,
    )
}

#[test]
fn all_schedule_permutations_are_observationally_equivalent() {
    let (canon_snap, canon_pkts, canon_flits) = run(None);
    assert!(canon_pkts > 100, "fabric carried too little traffic");
    for perm in permutations() {
        let (snap, pkts, flits) = run(Some(perm.clone()));
        assert_eq!(pkts, canon_pkts, "delivery count diverged under {perm:?}");
        assert_eq!(flits, canon_flits, "flit count diverged under {perm:?}");
        assert_eq!(
            snap, canon_snap,
            "checkpoint bytes diverged under schedule {perm:?}"
        );
    }
}
