//! Conformance tests for the canonical packet-switched router: wormhole
//! ordering, atomic VC allocation, arbitration fairness, gating
//! advertisements, and network-level flow-control invariants.

use noc_sim::{
    Coord, Direction, Flit, GatingConfig, Mesh, Network, NetworkConfig, NodeId, NodeModel,
    NodeOutputs, NullCtrl, Packet, PacketId, PacketNode, Port, PsPipeline, RouterConfig, Switching,
};

fn flit_of(pid: u64, src: NodeId, dst: NodeId, seq: u8, len: u8, vc: u8) -> Flit {
    let p = Packet::data(PacketId(pid), src, dst, len, 0);
    let mut f = Flit::of_packet(&p, seq, Switching::Packet);
    f.vc = vc;
    f
}

fn center_pipeline() -> (Mesh, PsPipeline) {
    let m = Mesh::square(3);
    let center = m.id(Coord::new(1, 1));
    (m, PsPipeline::new(center, m, RouterConfig::default()))
}

fn replenish_credits(p: &mut PsPipeline) {
    for port in [Port::North, Port::East, Port::South, Port::West] {
        for v in 0..4u8 {
            while p.out_credit(port, v as usize) < 5 {
                p.accept_credit(port.direction().unwrap(), noc_sim::Credit { vc: v });
            }
        }
    }
}

#[test]
fn wormhole_never_interleaves_packets_on_one_out_vc() {
    // Two 4-flit packets from different input ports compete for East; the
    // emitted per-VC flit sequence must be contiguous per packet.
    let (m, mut r) = center_pipeline();
    let dst = m.id(Coord::new(2, 1));
    for s in 0..4u8 {
        r.accept_flit(
            0,
            Port::West,
            flit_of(1, m.id(Coord::new(0, 1)), dst, s, 4, 0),
        );
        r.accept_flit(
            0,
            Port::North,
            flit_of(2, m.id(Coord::new(1, 0)), dst, s, 4, 0),
        );
    }
    let mut out = NodeOutputs::default();
    let mut per_vc: std::collections::HashMap<u8, Vec<u64>> = Default::default();
    for now in 0..40 {
        out.clear();
        r.step(now, &NullCtrl, &mut out);
        for (_, f) in out.flits.drain(..) {
            per_vc.entry(f.vc).or_default().push(f.packet.0);
        }
        replenish_credits(&mut r);
    }
    let total: usize = per_vc.values().map(Vec::len).sum();
    assert_eq!(total, 8, "all flits must leave");
    for (vc, pids) in per_vc {
        // Within one downstream VC, a packet's flits are contiguous.
        let mut runs = 1;
        for w in pids.windows(2) {
            if w[0] != w[1] {
                runs += 1;
            }
        }
        let distinct: std::collections::HashSet<u64> = pids.iter().copied().collect();
        assert_eq!(
            runs,
            distinct.len(),
            "vc {vc}: packets interleaved: {pids:?}"
        );
    }
}

#[test]
fn switch_allocation_is_fair_across_input_ports() {
    // Saturate two input ports toward the same output for a long time:
    // grant counts must be roughly equal.
    let (m, mut r) = center_pipeline();
    let dst = m.id(Coord::new(2, 1));
    let mut sent = [0u64; 2];
    let mut pid = 0;
    let mut got = [0u64; 2];
    let srcs = [m.id(Coord::new(0, 1)), m.id(Coord::new(1, 0))];
    let ports = [Port::West, Port::North];
    let mut out = NodeOutputs::default();
    for now in 0..2_000 {
        for (i, &port) in ports.iter().enumerate() {
            if r.vc_len(port, 0) < 5 {
                r.accept_flit(now, port, flit_of(pid, srcs[i], dst, 0, 1, 0));
                pid += 1;
                sent[i] += 1;
            }
        }
        out.clear();
        r.step(now, &NullCtrl, &mut out);
        for (_, f) in out.flits.drain(..) {
            // Identify source port by src coordinate.
            if f.src() == srcs[0] {
                got[0] += 1;
            } else {
                got[1] += 1;
            }
        }
        replenish_credits(&mut r);
    }
    let ratio = got[0] as f64 / got[1] as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "unfair arbitration: {got:?} (sent {sent:?})"
    );
}

#[test]
fn vc_count_advertisements_propagate_through_harness() {
    // Gating at one node must inform its neighbours within a few cycles.
    let cfg = NetworkConfig::with_mesh(Mesh::square(2));
    let gate_cfg = GatingConfig {
        epoch: 16,
        ..Default::default()
    };
    let mut net = Network::new(cfg.mesh, |id| {
        // Only node 0 gates.
        let g = if id == NodeId(0) {
            Some(gate_cfg)
        } else {
            None
        };
        PacketNode::new(id, &cfg, g)
    });
    net.run(100); // idle: node 0 gates down to min_vcs
                  // Node 1 is node 0's east neighbour; its West output must advertise
                  // node 0's reduced VC count.
    let n1 = &net.nodes[1];
    assert_eq!(
        n1.router.pipeline.downstream_vcs(Port::West),
        gate_cfg.min_vcs,
        "advertisement did not reach the neighbour"
    );
    // Unaffected directions keep the full count at other nodes.
    let n3 = &net.nodes[3];
    assert_eq!(
        n3.router.pipeline.downstream_vcs(Port::West),
        cfg.router.vcs_per_port
    );
}

#[test]
fn traffic_to_gated_node_still_flows() {
    let cfg = NetworkConfig::with_mesh(Mesh::square(3));
    let gate_cfg = GatingConfig {
        epoch: 16,
        min_vcs: 1,
        ..Default::default()
    };
    let mut net = Network::new(cfg.mesh, |id| PacketNode::new(id, &cfg, Some(gate_cfg)));
    net.run(200); // everything gates down
    net.begin_measurement();
    let mut id = 0;
    for src in cfg.mesh.nodes() {
        for dst in cfg.mesh.nodes() {
            if src != dst {
                net.inject(src, Packet::data(PacketId(id), src, dst, 5, net.now()));
                id += 1;
            }
        }
    }
    assert!(net.drain(20_000), "gated network must still deliver");
    net.end_measurement();
    assert_eq!(net.stats.packets_delivered, id);
}

#[test]
fn head_of_line_packet_does_not_block_other_vcs() {
    // VC0 heads to a credit-starved output; VC1 to a free one. VC1's
    // packet must still get through (that is what VCs are for).
    let (m, mut r) = center_pipeline();
    let east = m.id(Coord::new(2, 1));
    let south = m.id(Coord::new(1, 2));
    let west_src = m.id(Coord::new(0, 1));
    // Fill East: 4 packets of 5 flits on all 4 VCs, no credits returned.
    let mut pid = 100;
    let mut out = NodeOutputs::default();
    for _ in 0..30 {
        for vc in 0..4u8 {
            if r.vc_len(Port::North, vc as usize) < 5 {
                r.accept_flit(
                    0,
                    Port::North,
                    flit_of(pid, m.id(Coord::new(1, 0)), east, 0, 1, vc),
                );
                pid += 1;
            }
        }
        out.clear();
        r.step(0, &NullCtrl, &mut out);
    }
    // East is now credit-starved. A West→South packet on vc1 must pass.
    r.accept_flit(40, Port::West, flit_of(7, west_src, south, 0, 1, 1));
    let mut delivered = false;
    for now in 41..60 {
        out.clear();
        r.step(now, &NullCtrl, &mut out);
        if out
            .flits
            .iter()
            .any(|(d, f)| *d == Direction::South && f.packet == PacketId(7))
        {
            delivered = true;
            break;
        }
    }
    assert!(
        delivered,
        "unrelated traffic was blocked by a stalled output"
    );
}

#[test]
fn config_packets_route_adaptively_around_congestion() {
    // With East congested, a config packet with both E and S productive
    // must pick South (odd-even allows it at the source column when legal).
    let m = Mesh::square(4);
    let src = m.id(Coord::new(1, 0));
    let mut r = PsPipeline::new(src, m, RouterConfig::default());
    // Starve East of credits entirely (packets drain until all four
    // downstream VCs run out; none are ever returned).
    let mut out = NodeOutputs::default();
    let mut pid = 0;
    for now in 0..40u64 {
        if r.vc_len(Port::West, 0) < 5 {
            r.accept_flit(
                now,
                Port::West,
                flit_of(pid, m.id(Coord::new(0, 0)), m.id(Coord::new(3, 0)), 0, 1, 0),
            );
            pid += 1;
        }
        out.clear();
        r.step(now, &NullCtrl, &mut out);
        // No credits returned for East.
    }
    // At least one East VC is drained and parked with zero credits, so
    // East's congestion score is strictly below South's.
    assert!(r.port_score(Port::East) < r.port_score(Port::South));
    // A config packet from here to (3,2): E and S both minimal; col 1 is
    // odd so both are odd-even-legal; S has far more credit.
    let dst = m.id(Coord::new(3, 2));
    let info = noc_sim::SetupInfo {
        src,
        dst,
        slot: 0,
        duration: 4,
        path_id: 1,
    };
    let p = Packet::config(
        PacketId(999),
        src,
        dst,
        noc_sim::ConfigKind::Setup(info),
        50,
    );
    let arena = noc_sim::ConfigArena::new();
    let mut f = Flit::of_packet_in(&arena, &p, 0, Switching::Packet);
    f.vc = 3;
    r.accept_flit(50, Port::Local, f);
    let mut dir = None;
    for now in 50..70 {
        out.clear();
        r.step(now, &NullCtrl, &mut out);
        if let Some((d, _)) = out.flits.iter().find(|(_, f)| f.packet == PacketId(999)) {
            dir = Some(*d);
            break;
        }
    }
    assert_eq!(
        dir,
        Some(Direction::South),
        "config packet did not avoid congestion"
    );
}

#[test]
fn packet_node_inject_to_delivery_roundtrip() {
    let cfg = NetworkConfig::with_mesh(Mesh::square(3));
    let mut node = PacketNode::new(NodeId(4), &cfg, None); // center
                                                           // Inject a packet addressed to this very node: it must go out the
                                                           // local port and come back... no — local destination short-circuits
                                                           // through the router's local output.
    node.inject(0, Packet::data(PacketId(1), NodeId(4), NodeId(4), 3, 0));
    let mut out = NodeOutputs::default();
    let mut sink = Vec::new();
    for now in 0..30 {
        out.clear();
        node.step(now, &mut out);
        node.drain_delivered(&mut sink);
        if !sink.is_empty() {
            break;
        }
    }
    assert_eq!(sink.len(), 1);
    assert!(
        out.flits.is_empty(),
        "self-addressed packet must not leave the node"
    );
    assert_eq!(sink[0].len_flits, 3);
}
