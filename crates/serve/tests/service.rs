//! End-to-end service semantics: byte-identical cache replay, warm-up
//! checkpoint forking, cooperative cancellation, and single-flight dedup.

use std::sync::mpsc::{channel, Receiver};

use noc_scenario::{parse_pattern, BackendKind, Json, ScenarioSpec};
use noc_serve::{frame_kind, RunRequest, ScenarioService, ServeConfig};
use noc_traffic::PhaseConfig;

fn spec(seed: u64, measure: u64) -> ScenarioSpec {
    ScenarioSpec::synthetic(
        BackendKind::HybridTdmVc4,
        4,
        parse_pattern("UR", Vec::new()).unwrap(),
        0.05,
        PhaseConfig::pure_cycles(400, measure, 500),
        seed,
    )
}

fn submit(svc: &ScenarioService, id: &str, spec: ScenarioSpec) -> Receiver<String> {
    let (tx, rx) = channel();
    svc.submit(
        RunRequest {
            id: id.to_string(),
            spec,
            priority: 0,
            stream: None,
        },
        tx,
    );
    rx
}

/// Run the service workers for the duration of `body`.
fn with_workers<R>(svc: &ScenarioService, n: usize, body: impl FnOnce() -> R) -> R {
    std::thread::scope(|scope| {
        for _ in 0..n {
            scope.spawn(|| svc.worker_loop());
        }
        let r = body();
        svc.drain();
        svc.shutdown();
        r
    })
}

fn envelope_of(frame: &str) -> String {
    let j = Json::parse(frame).expect("frame parses");
    assert_eq!(
        j.get("kind").and_then(Json::as_str),
        Some("result"),
        "expected a result frame, got {frame}"
    );
    // Round-tripping through the parser would destroy byte-identity
    // evidence, so slice the raw envelope bytes out of the frame.
    let at = frame.find("\"envelope\":").expect("envelope field") + "\"envelope\":".len();
    frame[at..frame.len() - 1].to_string()
}

fn cache_label(frame: &str) -> String {
    Json::parse(frame)
        .ok()
        .and_then(|j| j.get("cache").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_default()
}

/// Satellite: a result-cache hit replays the exact bytes of the original
/// envelope without simulating a single tick.
#[test]
fn cache_hit_is_byte_identical_with_zero_simulated_ticks() {
    let svc = ScenarioService::new(ServeConfig::default());
    let (first, second) = with_workers(&svc, 1, || {
        let first = submit(&svc, "a", spec(7, 600)).recv().unwrap();
        // Same spec again: answered straight from the result cache.
        let second = submit(&svc, "b", spec(7, 600)).recv().unwrap();
        (first, second)
    });
    assert_eq!(cache_label(&first), "miss");
    assert_eq!(cache_label(&second), "hit");
    assert_eq!(
        envelope_of(&first),
        envelope_of(&second),
        "cached envelope must be byte-identical"
    );
    let st = svc.stats();
    assert_eq!(st.sim_runs, 1, "the hit simulated nothing");
    assert_eq!((st.cache_hits, st.cache_misses), (1, 1));
}

/// Tentpole: sweep points differing only in measurement parameters share
/// one warm-up checkpoint, and the forked run is byte-identical to the
/// same spec run continuously (no service, no checkpoint).
#[test]
fn warm_cache_fork_matches_continuous_run() {
    let svc = ScenarioService::new(ServeConfig::default());
    let (a, b) = with_workers(&svc, 1, || {
        // Same warm-up prefix, different measurement windows: the first
        // captures the blob, the second restores it.
        let a = submit(&svc, "a", spec(7, 600)).recv().unwrap();
        let b = submit(&svc, "b", spec(7, 900)).recv().unwrap();
        (a, b)
    });
    let st = svc.stats();
    assert_eq!((st.warm_misses, st.warm_hits), (1, 1));
    let warm_of = |frame: &str| {
        Json::parse(frame)
            .ok()
            .and_then(|j| j.get("warm").and_then(Json::as_str).map(str::to_string))
            .unwrap()
    };
    assert_eq!(
        (warm_of(&a).as_str(), warm_of(&b).as_str()),
        ("miss", "hit")
    );

    // The restored run must equal a continuous run of the same spec.
    for (frame, measure) in [(&a, 600), (&b, 900)] {
        let s = spec(7, measure);
        let mut point = noc_bench::run_synthetic_spec(&s).expect("direct run");
        point.result.wall_seconds = 0.0;
        point.result.sim_cycles_per_sec = 0.0;
        let direct = serde_json::to_string(&noc_scenario::result_envelope(
            &s,
            &noc_bench::SpecOutcome::Synth(point),
        ))
        .unwrap();
        assert_eq!(
            envelope_of(frame),
            direct,
            "service envelope (measure={measure}) must equal the continuous run"
        );
    }
}

/// Satellite: cancelling a running job stops it at tick granularity,
/// leaks nothing from the config arena, and frees the worker for the
/// next job.
#[test]
fn cancellation_frees_the_worker_and_leaks_nothing() {
    let svc = ScenarioService::new(ServeConfig::default());
    let after = with_workers(&svc, 1, || {
        // A long run the test cancels mid-flight.
        let rx = submit(&svc, "long", spec(3, 5_000_000));
        // Let the worker actually claim and start it.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let (ctx, _crx) = channel();
        svc.cancel("long", &ctx);
        let frame = rx.recv().unwrap();
        let j = Json::parse(&frame).unwrap();
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("cancelled"));
        assert_eq!(
            j.get("arena_live").and_then(Json::as_u64),
            Some(0),
            "cancelled run must release every arena payload: {frame}"
        );
        // The worker is free again: a small job completes normally.
        submit(&svc, "next", spec(9, 300)).recv().unwrap()
    });
    assert_eq!(cache_label(&after), "miss");
    let st = svc.stats();
    assert_eq!((st.cancelled, st.completed), (1, 1));
}

/// Satellite: two identical requests in one batch run the simulation
/// once — the second attaches to the in-flight job (single-flight dedup)
/// and receives the same envelope bytes.
#[test]
fn identical_in_batch_requests_are_deduplicated() {
    let svc = ScenarioService::new(ServeConfig::default());
    let (a, b) = with_workers(&svc, 1, || {
        // The run is long enough that the second submission lands while
        // the first is still queued or in flight.
        let ra = submit(&svc, "a", spec(5, 300_000));
        let rb = submit(&svc, "b", spec(5, 300_000));
        (ra.recv().unwrap(), rb.recv().unwrap())
    });
    let st = svc.stats();
    assert_eq!(st.dedup_hits, 1, "second request attached to the first");
    assert_eq!(st.sim_runs, 1, "one simulation served both");
    let labels = [cache_label(&a), cache_label(&b)];
    assert!(
        labels.contains(&"miss".to_string()) && labels.contains(&"dedup".to_string()),
        "one creator + one dedup subscriber, got {labels:?}"
    );
    assert_eq!(envelope_of(&a), envelope_of(&b));
}

/// Streaming: a subscribed request receives telemetry window frames
/// during measurement, and streaming never perturbs the results.
#[test]
fn streaming_windows_arrive_and_do_not_perturb_results() {
    let svc = ScenarioService::new(ServeConfig::default());
    let frames = with_workers(&svc, 1, || {
        let (tx, rx) = channel();
        svc.submit(
            RunRequest {
                id: "s".to_string(),
                spec: spec(11, 1_000),
                priority: 0,
                stream: Some(200),
            },
            tx,
        );
        let mut frames = Vec::new();
        while let Ok(f) = rx.recv() {
            let done = frame_kind(&f).as_deref() == Some("result");
            frames.push(f);
            if done {
                break;
            }
        }
        frames
    });
    let windows = frames
        .iter()
        .filter(|f| frame_kind(f).as_deref() == Some("window"))
        .count();
    assert!(
        windows >= 3,
        "a 1000-cycle measurement with 200-cycle windows yields several window frames, got {windows}"
    );
    let result = frames.last().unwrap();

    // The same spec unstreamed produces the identical envelope.
    let svc2 = ScenarioService::new(ServeConfig::default());
    let plain = with_workers(&svc2, 1, || {
        submit(&svc2, "p", spec(11, 1_000)).recv().unwrap()
    });
    assert_eq!(envelope_of(result), envelope_of(&plain));
}

/// Satellite: single-worker inline mode (`--workers 1` runs jobs on the
/// submitting thread via `run_queued`, no pool) keeps every service
/// semantic — byte-identical envelopes, warm-up sharing, result caching.
#[test]
fn inline_mode_matches_the_pooled_worker_byte_for_byte() {
    let pooled_svc = ScenarioService::new(ServeConfig::default());
    let pooled = with_workers(&pooled_svc, 1, || {
        (
            submit(&pooled_svc, "a", spec(7, 600)).recv().unwrap(),
            submit(&pooled_svc, "b", spec(7, 900)).recv().unwrap(),
        )
    });

    let svc = ScenarioService::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let ra = submit(&svc, "a", spec(7, 600));
    let rb = submit(&svc, "b", spec(7, 900));
    svc.run_queued();
    let inline = (ra.recv().unwrap(), rb.recv().unwrap());

    assert_eq!(envelope_of(&pooled.0), envelope_of(&inline.0));
    assert_eq!(envelope_of(&pooled.1), envelope_of(&inline.1));
    let st = svc.stats();
    assert_eq!(st.sim_runs, 2);
    assert_eq!(
        (st.warm_misses, st.warm_hits),
        (1, 1),
        "inline path keeps the warm-up cache discipline"
    );
    assert!(!svc.try_run_one(), "queue is drained");
}

/// Trace-replay specs route through the same tick-controlled runner as
/// synthetic ones: warm-up checkpoints are shared across the replay
/// sweep and identical requests hit the result cache.
#[test]
fn trace_replay_runs_through_the_service_with_both_cache_levels() {
    use noc_bench::capture_ticks;
    use noc_sim::Mesh;
    use noc_traffic::SyntheticSource;
    use std::sync::Arc;

    let mesh = Mesh::square(4);
    let mut src = SyntheticSource::new(mesh, parse_pattern("UR", Vec::new()).unwrap(), 0.1, 5, 3);
    let trace = Arc::new(capture_ticks(&mut src, mesh.len() as u32, 2_000));
    let tspec = |measure| {
        ScenarioSpec::trace(
            BackendKind::HybridTdmVc4,
            4,
            Arc::clone(&trace),
            PhaseConfig::pure_cycles(400, measure, 500),
            3,
        )
    };
    let svc = ScenarioService::new(ServeConfig::default());
    let (a, c) = with_workers(&svc, 1, || {
        let a = submit(&svc, "a", tspec(600)).recv().unwrap();
        submit(&svc, "b", tspec(900)).recv().unwrap();
        let c = submit(&svc, "c", tspec(600)).recv().unwrap();
        (a, c)
    });
    let st = svc.stats();
    assert_eq!(
        (st.warm_misses, st.warm_hits),
        (1, 1),
        "the replay sweep shares one warm-up checkpoint"
    );
    assert_eq!(st.cache_hits, 1, "the repeat request is a result-cache hit");
    assert_eq!(envelope_of(&a), envelope_of(&c));
    assert!(
        a.contains("\"mode\":\"trace\""),
        "envelope echoes the trace workload: {a}"
    );
}

/// The on-disk store answers across service restarts (a fresh process
/// with the same cache dir hits without simulating).
#[test]
fn disk_cache_survives_service_restart() {
    let dir = std::env::temp_dir().join(format!("noc-serve-disk-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let svc = ScenarioService::new(cfg.clone());
    let first = with_workers(&svc, 1, || submit(&svc, "a", spec(2, 500)).recv().unwrap());

    let svc2 = ScenarioService::new(cfg);
    let second = with_workers(&svc2, 1, || {
        submit(&svc2, "b", spec(2, 500)).recv().unwrap()
    });
    assert_eq!(cache_label(&second), "disk");
    assert_eq!(envelope_of(&first), envelope_of(&second));
    assert_eq!(svc2.stats().sim_runs, 0, "restart answered from disk");
    let _ = std::fs::remove_dir_all(&dir);
}
