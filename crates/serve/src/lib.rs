//! `noc-serve` — a batched scenario service for sweep campaigns.
//!
//! Running parameter sweeps as separate `noc-bench` processes repeats
//! work three ways: identical points are re-simulated, sweep points that
//! differ only in measurement parameters each re-pay the shared warm-up,
//! and every process rebuilds the same topology tables. This crate keeps
//! one long-lived process around instead:
//!
//! * **Protocol** ([`proto`]) — JSON-lines requests over a unix socket
//!   (or stdin, one-shot), JSON-lines response frames tagged with the
//!   request id.
//! * **Cache** ([`cache`]) — two content-addressed levels keyed by
//!   ([`canonical spec`](noc_scenario::canonical_spec_json),
//!   [`code version`](noc_scenario::code_version)) hashes: finished
//!   result envelopes (hits are byte-identical replays with zero
//!   simulated ticks) and `NOCCKPT1` warm-up checkpoints (sweep points
//!   sharing a warm-up prefix restore one blob).
//! * **Service** ([`service`]) — a priority scheduler with single-flight
//!   dedup, a scoped worker pool, tick-granularity cooperative
//!   cancellation, and live telemetry-window streaming for subscribed
//!   requests.

pub mod cache;
pub mod proto;
pub mod service;

pub use cache::{HitSource, ResultCache, WarmCache};
pub use proto::{
    bye_frame, cancelled_frame, error_frame, frame_kind, parse_request, result_frame, window_line,
    Request, RunRequest, DEFAULT_STREAM_WINDOW,
};
pub use service::{ScenarioService, ServeConfig, ServeStats};
