//! The two-level content-addressed cache behind the scenario service.
//!
//! * **Result cache** — finished result envelopes keyed by
//!   [`result_key`](noc_scenario::result_key): in-memory LRU over
//!   `Arc<String>` (the exact serialised bytes, so hits are replayed
//!   byte-identically without re-serialising) plus an optional on-disk
//!   store (`<dir>/<hex>.json`) that survives server restarts.
//! * **Warm-up cache** — `NOCCKPT1` checkpoint blobs keyed by
//!   [`warmup_key`](noc_scenario::warmup_key): sweep points that differ
//!   only in measurement parameters restore one shared blob instead of
//!   re-running warm-up. Blobs are orders of magnitude bigger than
//!   envelopes, so this level gets its own (smaller) LRU budget and
//!   `.ckpt` files on disk.
//!
//! Disk writes are best-effort: an unwritable cache directory degrades
//! the server to memory-only caching instead of failing requests.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use noc_scenario::{CacheKey, Checkpoint};

/// Where a cache hit was found (reported in the result frame and stats).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitSource {
    Memory,
    Disk,
}

struct Lru<V> {
    map: HashMap<CacheKey, (V, u64)>,
    tick: u64,
    max: usize,
}

impl<V> Lru<V> {
    fn new(max: usize) -> Self {
        Lru {
            map: HashMap::new(),
            tick: 0,
            max: max.max(1),
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, at)| {
            *at = tick;
            &*v
        })
    }

    fn put(&mut self, key: CacheKey, value: V) {
        self.tick += 1;
        self.map.insert(key, (value, self.tick));
        while self.map.len() > self.max {
            // O(n) eviction scan; the cache caps at a few hundred entries.
            let oldest = *self
                .map
                .iter()
                .min_by_key(|(_, (_, at))| *at)
                .map(|(k, _)| k)
                .expect("non-empty map has a minimum");
            self.map.remove(&oldest);
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

fn disk_path(dir: &Path, key: &CacheKey, ext: &str) -> PathBuf {
    dir.join(format!("{}.{ext}", key.hex()))
}

/// Finished result envelopes (exact serialised bytes).
pub struct ResultCache {
    mem: Lru<Arc<String>>,
    dir: Option<PathBuf>,
}

impl ResultCache {
    pub fn new(max: usize, dir: Option<PathBuf>) -> Self {
        ResultCache {
            mem: Lru::new(max),
            dir,
        }
    }

    /// Look up an envelope; disk hits are promoted into memory.
    pub fn get(&mut self, key: &CacheKey) -> Option<(Arc<String>, HitSource)> {
        if let Some(env) = self.mem.get(key) {
            return Some((Arc::clone(env), HitSource::Memory));
        }
        let dir = self.dir.as_deref()?;
        let env = std::fs::read_to_string(disk_path(dir, key, "json")).ok()?;
        let env = Arc::new(env);
        self.mem.put(*key, Arc::clone(&env));
        Some((env, HitSource::Disk))
    }

    pub fn put(&mut self, key: CacheKey, envelope: Arc<String>) {
        if let Some(dir) = &self.dir {
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(disk_path(dir, &key, "json"), envelope.as_bytes());
        }
        self.mem.put(key, envelope);
    }

    pub fn len(&self) -> usize {
        self.mem.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mem.len() == 0
    }
}

/// Warm-up checkpoint blobs shared across a sweep batch.
pub struct WarmCache {
    mem: Lru<Arc<Checkpoint>>,
    dir: Option<PathBuf>,
}

impl WarmCache {
    pub fn new(max: usize, dir: Option<PathBuf>) -> Self {
        WarmCache {
            mem: Lru::new(max),
            dir,
        }
    }

    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Checkpoint>> {
        if let Some(ck) = self.mem.get(key) {
            return Some(Arc::clone(ck));
        }
        let dir = self.dir.as_deref()?;
        let bytes = std::fs::read(disk_path(dir, key, "ckpt")).ok()?;
        // A corrupt or version-skewed blob is a miss, not an error: the
        // run simply pays its warm-up and overwrites the entry.
        let ck = Arc::new(Checkpoint::decode(&bytes).ok()?);
        self.mem.put(*key, Arc::clone(&ck));
        Some(ck)
    }

    pub fn put(&mut self, key: CacheKey, ck: Arc<Checkpoint>) {
        if let Some(dir) = &self.dir {
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(disk_path(dir, &key, "ckpt"), ck.encode());
        }
        self.mem.put(key, ck);
    }

    pub fn len(&self) -> usize {
        self.mem.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mem.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> CacheKey {
        CacheKey([b; 32])
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2, None);
        c.put(key(1), Arc::new("one".into()));
        c.put(key(2), Arc::new("two".into()));
        assert!(c.get(&key(1)).is_some()); // touch 1, making 2 the LRU
        c.put(key(3), Arc::new("three".into()));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(2)).is_none(), "2 was evicted");
        let (env, src) = c.get(&key(1)).expect("1 survived");
        assert_eq!((env.as_str(), src), ("one", HitSource::Memory));
    }

    #[test]
    fn disk_store_round_trips_and_promotes() {
        let dir = std::env::temp_dir().join(format!("noc-serve-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = ResultCache::new(4, Some(dir.clone()));
            c.put(key(7), Arc::new("{\"x\":1}".into()));
        }
        // A fresh cache (fresh process, conceptually) hits via disk.
        let mut c = ResultCache::new(4, Some(dir.clone()));
        let (env, src) = c.get(&key(7)).expect("disk hit");
        assert_eq!((env.as_str(), src), ("{\"x\":1}", HitSource::Disk));
        // And is now promoted to memory.
        let (_, src) = c.get(&key(7)).unwrap();
        assert_eq!(src, HitSource::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
