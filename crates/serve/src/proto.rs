//! The JSON-lines wire protocol: one request object per line in, one
//! frame object per line out, every frame tagged with the request id it
//! answers so concurrent requests can share a connection.
//!
//! Requests (`"op"` defaults to `"run"`):
//!
//! ```json
//! {"op":"run","id":"r1","spec":{...},"priority":5,"stream":true,"window":500}
//! {"op":"cancel","id":"r1"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! A bare [`ScenarioSpec`] object (recognised by its `"backend"` field)
//! is accepted as shorthand for a run request, so existing scenario files
//! can be piped straight into the one-shot stdin mode.
//!
//! Response frames (`"kind"`): `result` (with `cache`/`warm` provenance
//! and the full result `envelope`), `window` (a live telemetry metrics
//! window), `cancelled` (with the post-drain `arena_live` leak count),
//! `error`, `stats`, `bye`. Result envelopes are spliced into the frame
//! as the exact cached bytes — a cache hit is byte-identical to the frame
//! the original run produced.

use noc_scenario::{Json, ScenarioSpec};
use serde::Value;

/// One parsed request line. One transient value per line, so the spec
/// payload of `Run` stays unboxed despite the variant size skew.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Request {
    Run(RunRequest),
    Cancel { id: String },
    Stats,
    Shutdown,
}

/// A `run` request.
#[derive(Debug)]
pub struct RunRequest {
    pub id: String,
    pub spec: ScenarioSpec,
    /// Higher runs first; FIFO among equals. Default 0.
    pub priority: i64,
    /// `Some(window_cycles)` subscribes the request to live telemetry
    /// window frames during its measurement phase.
    pub stream: Option<u64>,
}

/// Metrics-window length when `"stream": true` names no `"window"`.
pub const DEFAULT_STREAM_WINDOW: u64 = 1_000;

/// Parse one request line. `fallback_id` names bare-spec shorthand
/// requests (the callers count submissions, so every request needs an
/// id). Errors are human-readable strings, reported as `error` frames.
pub fn parse_request(line: &str, fallback_id: &str) -> Result<Request, String> {
    let j = Json::parse(line).map_err(|e| e.to_string())?;
    let op = match j.get("op") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| "\"op\" must be a string".to_string())?,
        // Bare scenario-spec shorthand.
        None if j.get("backend").is_some() && j.get("spec").is_none() => {
            let spec = ScenarioSpec::from_json(&j).map_err(|e| e.to_string())?;
            return Ok(Request::Run(RunRequest {
                id: fallback_id.to_string(),
                spec: sanitize(spec),
                priority: 0,
                stream: None,
            }));
        }
        None => "run",
    };
    match op {
        "run" => {
            let id = j
                .get("id")
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_else(|| fallback_id.to_string());
            let spec_node = j
                .get("spec")
                .ok_or_else(|| "run request needs a \"spec\" object".to_string())?;
            let spec = ScenarioSpec::from_json(spec_node).map_err(|e| e.to_string())?;
            let priority = j
                .get("priority")
                .map(|p| {
                    p.as_f64()
                        .filter(|x| x.fract() == 0.0)
                        .map(|x| x as i64)
                        .ok_or_else(|| "\"priority\" must be an integer".to_string())
                })
                .transpose()?
                .unwrap_or(0);
            let stream = match j.get("stream") {
                Some(Json::Bool(true)) => Some(
                    j.get("window")
                        .map(|w| {
                            w.as_u64()
                                .filter(|&w| w > 0)
                                .ok_or_else(|| "\"window\" must be a positive integer".to_string())
                        })
                        .transpose()?
                        .unwrap_or(DEFAULT_STREAM_WINDOW),
                ),
                Some(Json::Bool(false)) | None => None,
                Some(_) => return Err("\"stream\" must be a boolean".to_string()),
            };
            Ok(Request::Run(RunRequest {
                id,
                spec: sanitize(spec),
                priority,
                stream,
            }))
        }
        "cancel" => {
            let id = j
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| "cancel request needs a string \"id\"".to_string())?;
            Ok(Request::Cancel { id: id.to_string() })
        }
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Strip host-local runtime plumbing from a submitted spec: the service
/// manages warm-up blobs through its own content-addressed cache, so
/// file-based checkpoint paths are ignored rather than honoured on the
/// server's filesystem.
fn sanitize(mut spec: ScenarioSpec) -> ScenarioSpec {
    spec.checkpoint_out = None;
    spec.checkpoint_from = None;
    spec
}

/// JSON string literal (quoted + escaped) for splicing ids into frames.
fn quote(s: &str) -> String {
    serde_json::to_string(&Value::Str(s.to_string())).expect("string serialisation is infallible")
}

/// `envelope` is spliced verbatim: for cache hits these are the exact
/// bytes the original run produced, making hit frames byte-identical.
pub fn result_frame(id: &str, cache: &str, warm: &str, envelope: &str) -> String {
    format!(
        "{{\"id\":{},\"kind\":\"result\",\"cache\":\"{cache}\",\"warm\":\"{warm}\",\"envelope\":{envelope}}}",
        quote(id)
    )
}

/// `body` is a serialised [`noc_sim::telemetry::metrics::window_frame`].
pub fn window_line(id: &str, body: &str) -> String {
    format!(
        "{{\"id\":{},\"kind\":\"window\",\"data\":{body}}}",
        quote(id)
    )
}

pub fn cancelled_frame(id: &str, arena_live: usize) -> String {
    format!(
        "{{\"id\":{},\"kind\":\"cancelled\",\"arena_live\":{arena_live}}}",
        quote(id)
    )
}

pub fn error_frame(id: Option<&str>, msg: &str) -> String {
    format!(
        "{{\"id\":{},\"kind\":\"error\",\"error\":{}}}",
        quote(id.unwrap_or("")),
        quote(msg)
    )
}

pub fn bye_frame() -> String {
    "{\"kind\":\"bye\"}".to_string()
}

/// The `"kind"` of a frame line (cheap client-side classification).
pub fn frame_kind(line: &str) -> Option<String> {
    Json::parse(line)
        .ok()?
        .get("kind")
        .and_then(Json::as_str)
        .map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{"backend": "PacketVc4", "mesh": 4,
        "traffic": {"mode": "synthetic", "pattern": "UR", "rate": 0.05},
        "phases": {"warmup_cycles": 100, "measure_cycles": 500}, "seed": 1}"#;

    #[test]
    fn parses_run_cancel_stats_shutdown() {
        let line = format!(
            "{{\"op\":\"run\",\"id\":\"a\",\"priority\":3,\"stream\":true,\"spec\":{SPEC}}}"
        );
        match parse_request(&line, "fallback").unwrap() {
            Request::Run(r) => {
                assert_eq!(r.id, "a");
                assert_eq!(r.priority, 3);
                assert_eq!(r.stream, Some(DEFAULT_STREAM_WINDOW));
                assert_eq!(r.spec.mesh, 4);
            }
            other => panic!("expected run, got {other:?}"),
        }
        assert!(matches!(
            parse_request("{\"op\":\"cancel\",\"id\":\"a\"}", "f").unwrap(),
            Request::Cancel { .. }
        ));
        assert!(matches!(
            parse_request("{\"op\":\"stats\"}", "f").unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request("{\"op\":\"shutdown\"}", "f").unwrap(),
            Request::Shutdown
        ));
    }

    #[test]
    fn bare_spec_shorthand_gets_the_fallback_id() {
        match parse_request(SPEC, "req-7").unwrap() {
            Request::Run(r) => {
                assert_eq!(r.id, "req-7");
                assert_eq!(r.priority, 0);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_paths_are_stripped_from_submitted_specs() {
        let line = format!(
            "{{\"id\":\"a\",\"spec\":{}}}",
            SPEC.trim_end_matches('}').to_string() + ", \"checkpoint_out\": \"/tmp/evil\"}"
        );
        match parse_request(&line, "f").unwrap() {
            Request::Run(r) => assert_eq!(r.spec.checkpoint_out, None),
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn frames_are_parseable_json_lines() {
        for line in [
            result_frame("a\"b", "hit", "none", "{\"schema_version\":2}"),
            window_line("x", "{\"start\":0,\"end\":10,\"metrics\":{}}"),
            cancelled_frame("x", 0),
            error_frame(Some("x"), "boom \"quoted\""),
            error_frame(None, "parse error"),
            bye_frame(),
        ] {
            assert!(
                Json::parse(&line).is_ok(),
                "frame must be valid JSON: {line}"
            );
            assert!(frame_kind(&line).is_some());
        }
        assert_eq!(
            frame_kind(&cancelled_frame("x", 3)).as_deref(),
            Some("cancelled")
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        for (line, needle) in [
            ("{\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"run\"}", "\"spec\""),
            ("{\"op\":\"cancel\"}", "\"id\""),
            ("not json", "expected"),
        ] {
            let e = parse_request(line, "f").unwrap_err();
            assert!(e.contains(needle), "{e:?} should mention {needle:?}");
        }
    }
}
