//! The scenario service proper: a priority scheduler, a scoped-thread
//! worker pool, and the glue between requests and the two-level cache.
//!
//! Concurrency layout — three independent locks, never held together:
//!
//! * `sched` (+ `work`/`idle` condvars) — the job queue, the in-flight
//!   single-flight index, and per-job subscriber lists.
//! * `caches` — the result/warm-up LRUs ([`crate::cache`]).
//! * `stats` — plain counters.
//!
//! A *job* is one simulation keyed by [`result_key`]; a *subscriber* is
//! one request attached to it. Requests arriving for a key already in
//! flight attach to the existing job instead of spawning a second
//! identical simulation (single-flight dedup), and every subscriber gets
//! the same cached envelope bytes when it finishes.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

use noc_bench::{run_spec, run_synthetic_spec_ctl, ServeRun, SpecOutcome, WarmStart};
use noc_scenario::{result_envelope, result_key, warmup_key, CacheKey, ScenarioSpec, TrafficSpec};
use noc_sim::telemetry::metrics::window_frame;
use noc_sim::{Fabric, TelemetryConfig};
use noc_traffic::RunControl;
use serde::Value;

use crate::cache::{HitSource, ResultCache, WarmCache};
use crate::proto::{cancelled_frame, error_frame, result_frame, window_line, RunRequest};

/// Server-side knobs (one-to-one with the CLI flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads simulating concurrently.
    pub workers: usize,
    /// In-memory result-cache entries.
    pub cache_max: usize,
    /// In-memory warm-up checkpoint entries (blobs are large, so this
    /// budget is separate and smaller).
    pub warm_max: usize,
    /// On-disk store surviving restarts (`None` = memory only).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            cache_max: 256,
            warm_max: 16,
            cache_dir: None,
        }
    }
}

/// Service counters, snapshotted into `stats` frames.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    pub requests: u64,
    /// Result-cache hits answered without simulating (memory + disk).
    pub cache_hits: u64,
    /// The subset of `cache_hits` served from the on-disk store.
    pub disk_hits: u64,
    pub cache_misses: u64,
    /// Requests attached to an already-in-flight identical job.
    pub dedup_hits: u64,
    /// Warm-up phases skipped by restoring a cached checkpoint.
    pub warm_hits: u64,
    pub warm_misses: u64,
    pub completed: u64,
    pub cancelled: u64,
    pub errors: u64,
    /// Simulations actually executed — stays flat across cache hits.
    pub sim_runs: u64,
}

/// One request attached to a job.
struct Sub {
    id: String,
    out: Sender<String>,
    /// Cache provenance reported in this subscriber's result frame
    /// (`"miss"` for the job creator, `"dedup"` for attached requests).
    label: &'static str,
    /// Live telemetry window length, when subscribed to streaming.
    stream: Option<u64>,
}

/// One simulation in flight (or queued), shared by its subscribers.
struct Job {
    key: CacheKey,
    spec: ScenarioSpec,
    subs: Vec<Sub>,
    /// Subscribers that cancelled while others kept the job alive; they
    /// get a `cancelled` frame when the job settles.
    cancel_subs: Vec<Sub>,
    cancel: Arc<AtomicBool>,
    running: bool,
}

/// Queue rank: higher priority first, FIFO among equals.
#[derive(PartialEq, Eq)]
struct Rank {
    priority: i64,
    seq: u64,
    job: u64,
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct Sched {
    queue: BinaryHeap<Rank>,
    jobs: HashMap<u64, Job>,
    /// Single-flight index: result key → live job id.
    inflight: HashMap<CacheKey, u64>,
    next_job: u64,
    next_seq: u64,
    shutdown: bool,
}

struct Caches {
    results: ResultCache,
    warm: WarmCache,
}

/// The shared service state. Workers, connection handlers and the
/// one-shot driver all hold `&ScenarioService` (scoped threads).
pub struct ScenarioService {
    sched: Mutex<Sched>,
    /// Signalled when the queue gains work or shutdown is requested.
    work: Condvar,
    /// Signalled when a job settles (for [`ScenarioService::drain`]).
    idle: Condvar,
    caches: Mutex<Caches>,
    stats: Mutex<ServeStats>,
    code_version: String,
    config: ServeConfig,
}

impl ScenarioService {
    pub fn new(config: ServeConfig) -> Self {
        ScenarioService {
            sched: Mutex::new(Sched::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
            caches: Mutex::new(Caches {
                results: ResultCache::new(config.cache_max, config.cache_dir.clone()),
                warm: WarmCache::new(config.warm_max, config.cache_dir.clone()),
            }),
            stats: Mutex::new(ServeStats::default()),
            code_version: noc_scenario::code_version(),
            config,
        }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    pub fn stats(&self) -> ServeStats {
        *self.stats.lock().expect("stats lock")
    }

    /// Submit one run request; every response frame goes to `out`.
    pub fn submit(&self, req: RunRequest, out: Sender<String>) {
        self.stats.lock().expect("stats lock").requests += 1;
        let key = result_key(&req.spec, &self.code_version);

        // Level 1: a finished envelope answers without simulating.
        let hit = self.caches.lock().expect("caches lock").results.get(&key);
        if let Some((env, src)) = hit {
            let mut st = self.stats.lock().expect("stats lock");
            st.cache_hits += 1;
            let label = match src {
                HitSource::Memory => "hit",
                HitSource::Disk => {
                    st.disk_hits += 1;
                    "disk"
                }
            };
            drop(st);
            let _ = out.send(result_frame(&req.id, label, "none", &env));
            return;
        }

        let mut s = self.sched.lock().expect("sched lock");
        if s.shutdown {
            let _ = out.send(error_frame(Some(&req.id), "server is shutting down"));
            return;
        }
        let sub = Sub {
            id: req.id,
            out,
            label: "miss",
            stream: req.stream,
        };
        // Single-flight: attach to an identical in-flight job.
        if let Some(&job_id) = s.inflight.get(&key) {
            if let Some(job) = s.jobs.get_mut(&job_id) {
                job.subs.push(Sub {
                    label: "dedup",
                    ..sub
                });
                self.stats.lock().expect("stats lock").dedup_hits += 1;
                return;
            }
        }
        let job_id = s.next_job;
        s.next_job += 1;
        let seq = s.next_seq;
        s.next_seq += 1;
        s.inflight.insert(key, job_id);
        s.jobs.insert(
            job_id,
            Job {
                key,
                spec: req.spec,
                subs: vec![sub],
                cancel_subs: Vec::new(),
                cancel: Arc::new(AtomicBool::new(false)),
                running: false,
            },
        );
        s.queue.push(Rank {
            priority: req.priority,
            seq,
            job: job_id,
        });
        self.stats.lock().expect("stats lock").cache_misses += 1;
        self.work.notify_one();
    }

    /// Cancel the request with this id. Cancelling the last subscriber
    /// cancels the underlying job: immediately if still queued, at the
    /// next simulated tick if running.
    pub fn cancel(&self, id: &str, out: &Sender<String>) {
        let mut s = self.sched.lock().expect("sched lock");
        let Some((&job_id, _)) = s
            .jobs
            .iter()
            .find(|(_, j)| j.subs.iter().any(|sub| sub.id == id))
        else {
            let _ = out.send(error_frame(Some(id), "unknown or already finished request"));
            return;
        };
        let job = s.jobs.get_mut(&job_id).expect("job id just found");
        let at = job.subs.iter().position(|sub| sub.id == id).expect("sub");
        let sub = job.subs.remove(at);
        job.cancel_subs.push(sub);
        if !job.subs.is_empty() {
            return; // Other subscribers keep the job alive.
        }
        job.cancel.store(true, AtomicOrdering::Relaxed);
        if !job.running {
            // Never started: settle it right here.
            let job = s.jobs.remove(&job_id).expect("job still present");
            if s.inflight.get(&job.key) == Some(&job_id) {
                s.inflight.remove(&job.key);
            }
            drop(s);
            self.stats.lock().expect("stats lock").cancelled += 1;
            for sub in job.cancel_subs {
                let _ = sub.out.send(cancelled_frame(&sub.id, 0));
            }
            self.idle.notify_all();
        }
    }

    /// Ask workers to exit once the queue is empty.
    pub fn shutdown(&self) {
        self.sched.lock().expect("sched lock").shutdown = true;
        self.work.notify_all();
    }

    /// Block until no job is queued or running.
    pub fn drain(&self) {
        let mut s = self.sched.lock().expect("sched lock");
        while !s.jobs.is_empty() {
            s = self.idle.wait(s).expect("sched lock");
        }
    }

    /// Worker thread body: claim the highest-priority queued job, run it,
    /// publish the envelope, repeat until shutdown.
    pub fn worker_loop(&self) {
        while let Some(claimed) = self.claim(true) {
            self.run_claimed(claimed);
        }
    }

    /// Pop and execute the highest-priority queued job on the calling
    /// thread, without blocking. Returns `false` when nothing is queued.
    ///
    /// This is the single-worker inline mode: with `--workers 1` the
    /// entry points skip the scoped worker pool entirely and interleave
    /// simulation with request handling on the accept thread, so a
    /// one-shot batch costs no thread spawns and no condvar traffic.
    pub fn try_run_one(&self) -> bool {
        match self.claim(false) {
            Some(claimed) => {
                self.run_claimed(claimed);
                true
            }
            None => false,
        }
    }

    /// Run every currently queued job on the calling thread.
    pub fn run_queued(&self) {
        while self.try_run_one() {}
    }

    /// Claim the next queued job, marking it running. `block` selects
    /// between the pooled-worker discipline (wait on the `work` condvar
    /// until shutdown) and the inline one (return `None` immediately).
    fn claim(&self, block: bool) -> Option<Claimed> {
        let mut s = self.sched.lock().expect("sched lock");
        loop {
            match s.queue.pop() {
                Some(rank) => {
                    // Entries for jobs cancelled while queued are left
                    // stale in the heap; skip them.
                    let Some(job) = s.jobs.get_mut(&rank.job) else {
                        continue;
                    };
                    job.running = true;
                    let streams: Vec<(String, u64, Sender<String>)> = job
                        .subs
                        .iter()
                        .filter_map(|sub| sub.stream.map(|w| (sub.id.clone(), w, sub.out.clone())))
                        .collect();
                    return Some(Claimed {
                        job_id: rank.job,
                        spec: job.spec.clone(),
                        cancel: Arc::clone(&job.cancel),
                        streams,
                    });
                }
                None if !block || s.shutdown => return None,
                None => s = self.work.wait(s).expect("sched lock"),
            }
        }
    }

    fn run_claimed(&self, claimed: Claimed) {
        self.stats.lock().expect("stats lock").sim_runs += 1;
        self.execute(
            claimed.job_id,
            claimed.spec,
            claimed.cancel,
            claimed.streams,
        );
    }

    fn execute(
        &self,
        job_id: u64,
        spec: ScenarioSpec,
        cancel: Arc<AtomicBool>,
        streams: Vec<(String, u64, Sender<String>)>,
    ) {
        let settled = match &spec.traffic {
            // Trace replays share the synthetic tick-controlled runner
            // (same cancel/stream seam, same warm-up cache discipline).
            TrafficSpec::Synthetic { .. } | TrafficSpec::Trace { .. } => {
                self.run_synthetic(&spec, &cancel, &streams)
            }
            // Hetero runs have no tick-granularity control seam; honour a
            // cancel that lands before the run starts, else run to done.
            TrafficSpec::Hetero { .. } => {
                if cancel.load(AtomicOrdering::Relaxed) {
                    Settled::Cancelled { arena_live: 0 }
                } else {
                    match run_spec(&spec) {
                        Ok(outcome) => Settled::Done {
                            outcome,
                            warm: "none",
                        },
                        Err(e) => Settled::Error(e.to_string()),
                    }
                }
            }
        };

        // Publish before unregistering the job so late-attaching dedup
        // subscribers can never miss both the cache and the job.
        let published = match &settled {
            Settled::Done { outcome, warm } => {
                let envelope = Arc::new(
                    serde_json::to_string(&result_envelope(&spec, outcome))
                        .expect("envelopes serialise"),
                );
                let key = result_key(&spec, &self.code_version);
                self.caches
                    .lock()
                    .expect("caches lock")
                    .results
                    .put(key, Arc::clone(&envelope));
                Some((envelope, *warm))
            }
            _ => None,
        };

        let job = {
            let mut s = self.sched.lock().expect("sched lock");
            let job = s.jobs.remove(&job_id).expect("running job is registered");
            if s.inflight.get(&job.key) == Some(&job_id) {
                s.inflight.remove(&job.key);
            }
            job
        };

        let mut st = self.stats.lock().expect("stats lock");
        match &settled {
            Settled::Done { .. } => st.completed += 1,
            Settled::Cancelled { .. } => st.cancelled += 1,
            Settled::Error(_) => st.errors += 1,
        }
        drop(st);

        for sub in &job.subs {
            let frame = match (&settled, &published) {
                (Settled::Done { .. }, Some((env, warm))) => {
                    result_frame(&sub.id, sub.label, warm, env)
                }
                (Settled::Cancelled { arena_live }, _) => cancelled_frame(&sub.id, *arena_live),
                (Settled::Error(e), _) => error_frame(Some(&sub.id), e),
                (Settled::Done { .. }, None) => unreachable!("done runs are published"),
            };
            let _ = sub.out.send(frame);
        }
        for sub in &job.cancel_subs {
            let arena_live = match &settled {
                Settled::Cancelled { arena_live } => *arena_live,
                _ => 0,
            };
            let _ = sub.out.send(cancelled_frame(&sub.id, arena_live));
        }
        self.idle.notify_all();
    }

    fn run_synthetic(
        &self,
        spec: &ScenarioSpec,
        cancel: &Arc<AtomicBool>,
        streams: &[(String, u64, Sender<String>)],
    ) -> Settled {
        // Level 2: share the warm-up prefix across the sweep batch.
        let wk = warmup_key(spec, &self.code_version);
        let cached_warm = wk
            .as_ref()
            .and_then(|k| self.caches.lock().expect("caches lock").warm.get(k));
        let warm_label = match (&wk, &cached_warm) {
            (None, _) => "none",
            (Some(_), Some(_)) => "hit",
            (Some(_), None) => "miss",
        };
        if wk.is_some() {
            let mut st = self.stats.lock().expect("stats lock");
            match cached_warm {
                Some(_) => st.warm_hits += 1,
                None => st.warm_misses += 1,
            }
        }
        let warm_start = match &cached_warm {
            Some(ck) => WarmStart::Restore(ck),
            None => WarmStart::Fresh {
                capture: wk.is_some(),
            },
        };
        // Streaming telemetry: windowed metrics only (no ring events), at
        // the finest window any subscriber asked for.
        let stream_cfg = streams
            .iter()
            .map(|(_, w, _)| *w)
            .min()
            .map(|window| TelemetryConfig {
                mask: 0,
                capacity: 64,
                sample: 1,
                window,
            });
        let mut ctl = ServeControl {
            cancel,
            streams,
            names: None,
            seen: 0,
        };
        match run_synthetic_spec_ctl(spec, warm_start, stream_cfg.as_ref(), &mut ctl) {
            Ok(ServeRun::Done { point, warm }) => {
                if let (Some(k), Some(ck)) = (wk, warm) {
                    self.caches
                        .lock()
                        .expect("caches lock")
                        .warm
                        .put(k, Arc::new(ck));
                }
                Settled::Done {
                    outcome: SpecOutcome::Synth(point),
                    warm: warm_label,
                }
            }
            Ok(ServeRun::Cancelled { arena_live }) => Settled::Cancelled { arena_live },
            Err(e) => Settled::Error(e.to_string()),
        }
    }

    /// Snapshot counters + cache occupancy as a `stats` frame line.
    pub fn stats_frame(&self) -> String {
        let st = self.stats();
        let (results_len, warm_len) = {
            let c = self.caches.lock().expect("caches lock");
            (c.results.len(), c.warm.len())
        };
        let counters = [
            ("requests", st.requests),
            ("cache_hits", st.cache_hits),
            ("disk_hits", st.disk_hits),
            ("cache_misses", st.cache_misses),
            ("dedup_hits", st.dedup_hits),
            ("warm_hits", st.warm_hits),
            ("warm_misses", st.warm_misses),
            ("completed", st.completed),
            ("cancelled", st.cancelled),
            ("errors", st.errors),
            ("sim_runs", st.sim_runs),
            ("workers", self.config.workers as u64),
            ("result_cache_len", results_len as u64),
            ("warm_cache_len", warm_len as u64),
        ];
        let data = Value::Object(
            counters
                .iter()
                .map(|(k, v)| (k.to_string(), Value::UInt(*v)))
                .collect(),
        );
        format!(
            "{{\"kind\":\"stats\",\"data\":{}}}",
            serde_json::to_string(&data).expect("stats serialise")
        )
    }
}

/// A queued job claimed for execution (pooled worker or inline).
struct Claimed {
    job_id: u64,
    spec: ScenarioSpec,
    cancel: Arc<AtomicBool>,
    streams: Vec<(String, u64, Sender<String>)>,
}

/// How one job ended. One short-lived value per run, so the size skew
/// of the `Done` payload doesn't justify boxing.
#[allow(clippy::large_enum_variant)]
enum Settled {
    Done {
        outcome: SpecOutcome,
        /// Warm-up cache provenance: `"hit"` / `"miss"` / `"none"`.
        warm: &'static str,
    },
    Cancelled {
        arena_live: usize,
    },
    Error(String),
}

/// The per-run [`RunControl`] hook: polls the shared cancel flag every
/// simulated tick and forwards newly closed telemetry windows to the
/// job's streaming subscribers.
struct ServeControl<'a> {
    cancel: &'a AtomicBool,
    streams: &'a [(String, u64, Sender<String>)],
    names: Option<Vec<String>>,
    seen: usize,
}

impl RunControl for ServeControl<'_> {
    fn on_cycle(&mut self, fabric: &mut dyn Fabric) -> bool {
        if self.cancel.load(AtomicOrdering::Relaxed) {
            return false;
        }
        if !self.streams.is_empty() {
            let count = fabric.telemetry_window_count();
            if count > self.seen {
                let names = self
                    .names
                    .get_or_insert_with(|| fabric.telemetry_metric_names());
                for w in fabric.telemetry_windows_from(self.seen) {
                    let body =
                        serde_json::to_string(&window_frame(names, &w)).expect("window serialise");
                    for (id, _, out) in self.streams {
                        let _ = out.send(window_line(id, &body));
                    }
                }
                self.seen = count;
            }
        }
        true
    }
}
