//! `noc-serve` — batched scenario service.
//!
//! Modes (first match wins):
//!
//! * `noc-serve --listen <socket> [--workers N] [--cache-dir D] [--cache-max N] [--warm-max N]`
//!   — long-running server: JSON-lines requests over a unix socket,
//!   frames back on the same connection.
//! * `noc-serve --connect <socket>` — client: pipe request lines from
//!   stdin to a running server, print every response frame, exit once
//!   all submitted requests have settled.
//! * `noc-serve --bench [--quick]` — in-process A/B measurement of the
//!   cache layers (numbers for `results/network_step_speedup.txt`).
//! * `noc-serve` — one-shot: read request lines (or bare scenario specs)
//!   from stdin, run the batch, print frames to stdout.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::time::{Duration, Instant};

use noc_scenario::{parse_pattern, quick_flag, BackendKind, Json, ScenarioSpec};
use noc_serve::{
    bye_frame, error_frame, frame_kind, parse_request, Request, ScenarioService, ServeConfig,
};
use noc_traffic::PhaseConfig;

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn usize_flag(flag: &str, default: usize) -> usize {
    arg_value(flag)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} needs an integer, got {v:?}"))
        })
        .unwrap_or(default)
}

fn config_from_cli() -> ServeConfig {
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(4);
    ServeConfig {
        workers: usize_flag("--workers", default_workers).max(1),
        cache_max: usize_flag("--cache-max", 256),
        warm_max: usize_flag("--warm-max", 16),
        cache_dir: arg_value("--cache-dir").map(Into::into),
    }
}

fn main() {
    if std::env::args().any(|a| a == "--bench") {
        bench(quick_flag());
        return;
    }
    if let Some(path) = arg_value("--connect") {
        if let Err(e) = client(&path) {
            eprintln!("noc-serve: {e}");
            std::process::exit(1);
        }
        return;
    }
    let svc = ScenarioService::new(config_from_cli());
    if let Some(path) = arg_value("--listen") {
        if let Err(e) = serve_socket(&svc, &path) {
            eprintln!("noc-serve: {e}");
            std::process::exit(1);
        }
    } else {
        serve_stdin(&svc);
    }
}

/// Dispatch one parsed request line from a connection or stdin.
fn dispatch(svc: &ScenarioService, line: &str, fallback_id: &str, tx: &Sender<String>) -> bool {
    match parse_request(line, fallback_id) {
        Ok(Request::Run(req)) => svc.submit(req, tx.clone()),
        Ok(Request::Cancel { id }) => svc.cancel(&id, tx),
        Ok(Request::Stats) => {
            let _ = tx.send(svc.stats_frame());
        }
        Ok(Request::Shutdown) => {
            let _ = tx.send(bye_frame());
            return true;
        }
        Err(e) => {
            let _ = tx.send(error_frame(None, &e));
        }
    }
    false
}

/// One-shot mode: run the whole stdin batch, stream frames to stdout.
///
/// With `--workers 1` no worker pool is spawned at all: jobs run inline
/// on this thread between request lines (the single-flight/cache path is
/// identical, only the threading differs).
fn serve_stdin(svc: &ScenarioService) {
    let inline = svc.config().workers <= 1;
    std::thread::scope(|scope| {
        if !inline {
            for _ in 0..svc.config().workers {
                scope.spawn(|| svc.worker_loop());
            }
        }
        let (tx, rx) = channel::<String>();
        let printer = scope.spawn(move || {
            let mut out = BufWriter::new(std::io::stdout().lock());
            for frame in rx {
                let _ = writeln!(out, "{frame}");
                let _ = out.flush();
            }
        });
        let stdin = std::io::stdin();
        let mut n = 0u64;
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            n += 1;
            if dispatch(svc, line, &format!("req-{n}"), &tx) {
                break;
            }
            if inline {
                svc.run_queued();
            }
        }
        if inline {
            svc.run_queued();
        }
        svc.drain();
        svc.shutdown();
        drop(tx);
        let _ = printer.join();
    });
}

/// Server mode: accept unix-socket connections until a client sends
/// `{"op":"shutdown"}`.
fn serve_socket(svc: &ScenarioService, path: &str) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let stop = AtomicBool::new(false);
    eprintln!(
        "noc-serve: listening on {path} ({} workers)",
        svc.config().workers
    );
    // With `--workers 1` the accept thread doubles as the worker: no
    // pool is spawned, and queued jobs run between accept polls.
    let inline = svc.config().workers <= 1;
    std::thread::scope(|scope| {
        if !inline {
            for _ in 0..svc.config().workers {
                scope.spawn(|| svc.worker_loop());
            }
        }
        let mut conn_id = 0u64;
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    conn_id += 1;
                    let conn = conn_id;
                    let stop = &stop;
                    scope.spawn(move || handle_conn(svc, stream, conn, stop));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if !(inline && svc.try_run_one()) {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                }
                Err(e) => {
                    eprintln!("noc-serve: accept failed: {e}");
                    break;
                }
            }
        }
        if inline {
            // Settle anything still queued so connection writers (which
            // drain until every job-held sender drops) can exit.
            svc.run_queued();
        }
        svc.shutdown();
    });
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn handle_conn(svc: &ScenarioService, stream: UnixStream, conn: u64, stop: &AtomicBool) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<String>();
    // The writer owns only channel + socket halves, so a plain (detached
    // by join below) thread works; it drains until every job-held sender
    // is dropped, keeping frames flowing after the reader quits.
    let writer = std::thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        for frame in rx {
            if writeln!(out, "{frame}").and_then(|_| out.flush()).is_err() {
                break;
            }
        }
    });
    // Short read timeout so the reader notices a server-wide shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = BufReader::new(&stream);
    let mut buf = String::new();
    let mut n = 0u64;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match reader.read_line(&mut buf) {
            Ok(0) => break,
            Ok(_) => {
                let line = buf.trim();
                if !line.is_empty() {
                    n += 1;
                    if dispatch(svc, line, &format!("c{conn}-{n}"), &tx) {
                        stop.store(true, Ordering::Relaxed);
                        svc.shutdown();
                        buf.clear();
                        break;
                    }
                }
                buf.clear();
            }
            // Timeout mid-line: partial bytes stay in `buf`, keep reading.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// Client mode: forward stdin request lines, print frames until every
/// submitted request has settled.
fn client(path: &str) -> std::io::Result<()> {
    let stream = UnixStream::connect(path)?;
    let mut expected = 0u64;
    {
        let mut w = BufWriter::new(stream.try_clone()?);
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            // How many terminal frames this line produces: every op except
            // `cancel` settles with exactly one (a cancelled run's own
            // `cancelled` frame settles the run line, not the cancel line).
            let op = Json::parse(line)
                .ok()
                .and_then(|j| j.get("op").and_then(Json::as_str).map(str::to_string))
                .unwrap_or_else(|| "run".to_string());
            if op != "cancel" {
                expected += 1;
            }
            writeln!(w, "{line}")?;
        }
        w.flush()?;
    }
    let mut seen = 0u64;
    let reader = BufReader::new(stream);
    for frame in reader.lines() {
        let frame = frame?;
        println!("{frame}");
        if matches!(
            frame_kind(&frame).as_deref(),
            Some("result" | "cancelled" | "error" | "stats" | "bye")
        ) {
            seen += 1;
            if seen >= expected {
                break;
            }
        }
    }
    Ok(())
}

// --- A/B bench -----------------------------------------------------------

/// A sweep batch sharing one warm-up prefix: same backend, mesh, traffic
/// and seed; only the measurement window varies.
fn sweep_batch(quick: bool, points: usize) -> Vec<ScenarioSpec> {
    let (mesh, warmup, measure0) = if quick {
        (8, 2_000, 500)
    } else {
        (16, 20_000, 1_000)
    };
    let pattern = parse_pattern("UR", Vec::new()).expect("UR parses");
    (0..points)
        .map(|i| {
            let phases = PhaseConfig::pure_cycles(warmup, measure0 + 250 * i as u64, 2_000);
            ScenarioSpec::synthetic(
                BackendKind::HybridTdmVc4,
                mesh,
                pattern.clone(),
                0.05,
                phases,
                42,
            )
        })
        .collect()
}

/// Run a batch through a fresh or reused service, returning wall time
/// and the envelopes in submission order.
fn run_batch(svc: &ScenarioService, specs: &[ScenarioSpec], workers: usize) -> (f64, Vec<String>) {
    use noc_serve::RunRequest;
    let start = Instant::now();
    let mut frames: Vec<(String, String)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| scope.spawn(|| svc.worker_loop()))
            .collect();
        let (tx, rx) = channel::<String>();
        for (i, spec) in specs.iter().enumerate() {
            svc.submit(
                RunRequest {
                    id: format!("p{i}"),
                    spec: spec.clone(),
                    priority: 0,
                    stream: None,
                },
                tx.clone(),
            );
        }
        svc.drain();
        svc.shutdown();
        drop(tx);
        for frame in rx {
            let id = Json::parse(&frame)
                .ok()
                .and_then(|j| j.get("id").and_then(Json::as_str).map(str::to_string))
                .unwrap_or_default();
            frames.push((id, frame));
        }
        for h in handles {
            let _ = h.join();
        }
    });
    frames.sort();
    (
        start.elapsed().as_secs_f64(),
        frames.into_iter().map(|(_, f)| f).collect(),
    )
}

fn bench(quick: bool) {
    let points = 8;
    let specs = sweep_batch(quick, points);
    let trials = if quick { 2 } else { 3 };
    println!(
        "noc-serve cache A/B: {points}-point sweep, mesh {}x{}, warm-up {} cycles, {trials} interleaved trials",
        specs[0].mesh, specs[0].mesh, specs[0].phases.warmup_cycles
    );

    let mut t_indep = f64::MAX;
    let mut t_shared = f64::MAX;
    let mut t_replay = f64::MAX;
    let mut replay_identical = true;
    for _ in 0..trials {
        // A: independent runs — every point pays the full warm-up.
        let start = Instant::now();
        for spec in &specs {
            noc_bench::run_synthetic_spec(spec).expect("independent run");
        }
        t_indep = t_indep.min(start.elapsed().as_secs_f64());

        // B: one service, one worker — the batch shares one warm-up blob.
        let svc = ScenarioService::new(ServeConfig::default());
        let (t, first) = run_batch(&svc, &specs, 1);
        t_shared = t_shared.min(t);
        let st = svc.stats();
        assert_eq!(st.warm_misses, 1, "first point captures the warm-up");
        assert_eq!(st.warm_hits as usize, points - 1, "the rest restore it");

        // Replay: identical batch against the warm service — pure result-
        // cache hits, byte-identical envelopes, zero new simulations.
        let sim_runs_before = st.sim_runs;
        let (t, second) = run_batch(&svc, &specs, 1);
        t_replay = t_replay.min(t);
        // Frame labels legitimately differ (miss vs hit) — the byte-
        // identity contract is on the envelope payloads.
        let env = |frame: &String| {
            let at = frame.find("\"envelope\":").expect("result frame") + "\"envelope\":".len();
            frame[at..frame.len() - 1].to_string()
        };
        replay_identical &=
            first.len() == second.len() && first.iter().map(env).eq(second.iter().map(env));
        assert_eq!(
            svc.stats().sim_runs,
            sim_runs_before,
            "replay simulates nothing"
        );
    }
    println!("  independent runs      {t_indep:>8.3} s");
    println!(
        "  shared warm-up        {t_shared:>8.3} s  ({:.2}x)",
        t_indep / t_shared
    );
    println!(
        "  result-cache replay   {t_replay:>8.3} s  ({:.0}x, byte-identical: {replay_identical})",
        t_indep / t_replay
    );

    // Worker-pool scaling on independent-seed points (no shared warm-up).
    let scale_specs: Vec<ScenarioSpec> = (0..points)
        .map(|i| {
            let mut s = sweep_batch(quick, 1).remove(0);
            s.seed = 100 + i as u64;
            s
        })
        .collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n = ServeConfig::default().workers;
    let mut t1 = f64::MAX;
    let mut tn = f64::MAX;
    for _ in 0..trials {
        let svc = ScenarioService::new(ServeConfig::default());
        let (t, _) = run_batch(&svc, &scale_specs, 1);
        t1 = t1.min(t);
        let svc = ScenarioService::new(ServeConfig::default());
        let (t, _) = run_batch(&svc, &scale_specs, n);
        tn = tn.min(t);
    }
    println!(
        "  worker pool           {t1:>8.3} s (1 worker) vs {tn:.3} s ({n} workers, {cores}-core host): {:.2}x",
        t1 / tn
    );
}
