//! Injection-side trace capture: record every packet a workload offers,
//! tick by tick, into a replayable [`PacketTrace`].
//!
//! This is the exact capture point — the recorder sits between the
//! workload and the NIC, so replaying its output reproduces the original
//! injection stream byte-for-byte (same cycles, sources, destinations,
//! classes and sizes), independent of what the fabric did with the
//! packets afterwards.

use noc_sim::{NodeId, Packet};
use noc_traffic::Workload;

use crate::trace::{PacketTrace, TraceRecord, CLASS_CS, CLASS_PS};

/// Accumulates injection records for one run.
#[derive(Debug)]
pub struct TraceRecorder {
    nodes: u32,
    records: Vec<TraceRecord>,
    tick: u64,
}

impl TraceRecorder {
    pub fn new(nodes: u32) -> Self {
        TraceRecorder {
            nodes,
            records: Vec::new(),
            tick: 0,
        }
    }

    /// Record one offered packet at the current tick.
    pub fn observe(&mut self, src: NodeId, pkt: &Packet) {
        self.records.push(TraceRecord {
            cycle: self.tick,
            src: src.0,
            dst: pkt.dst.0,
            class: if pkt.cs_eligible { CLASS_CS } else { CLASS_PS },
            size: pkt.len_flits,
        });
    }

    /// Advance to the next injection tick (call once per workload tick,
    /// after its packets were observed).
    pub fn advance(&mut self) {
        self.tick += 1;
    }

    pub fn finish(self) -> PacketTrace {
        PacketTrace {
            nodes: self.nodes,
            records: self.records,
        }
    }
}

/// Run `workload` for `ticks` cycles into a recorder and return the
/// captured trace. Callers profiling a synthetic warm-up must pass a
/// *fresh* source so the run's own RNG stream is untouched.
pub fn capture_ticks<W: Workload>(workload: &mut W, nodes: u32, ticks: u64) -> PacketTrace {
    let mut rec = TraceRecorder::new(nodes);
    for now in 0..ticks {
        workload.tick(now, false, &mut |src, pkt| rec.observe(src, &pkt));
        rec.advance();
    }
    rec.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceSource;
    use std::sync::Arc;

    #[test]
    fn capture_then_replay_is_identity() {
        let trace = Arc::new(PacketTrace {
            nodes: 9,
            records: vec![
                TraceRecord {
                    cycle: 1,
                    src: 0,
                    dst: 8,
                    class: CLASS_CS,
                    size: 5,
                },
                TraceRecord {
                    cycle: 1,
                    src: 2,
                    dst: 3,
                    class: CLASS_PS,
                    size: 5,
                },
                TraceRecord {
                    cycle: 4,
                    src: 7,
                    dst: 1,
                    class: CLASS_CS,
                    size: 2,
                },
            ],
        });
        let mut src = TraceSource::new(trace.clone());
        let captured = capture_ticks(&mut src, 9, 6);
        assert_eq!(captured, *trace);
    }

    #[test]
    fn recorder_stamps_the_current_tick() {
        let mut rec = TraceRecorder::new(4);
        let mut f = noc_traffic::PacketFactory::new();
        rec.advance();
        rec.advance();
        let p = f.data(NodeId(1), NodeId(2), 5, 2, false);
        rec.observe(NodeId(1), &p);
        let t = rec.finish();
        assert_eq!(t.records.len(), 1);
        assert_eq!(t.records[0].cycle, 2);
        assert_eq!(t.records[0].class, CLASS_CS);
        t.validate().unwrap();
    }
}
