//! The profiling pass of profiled hybrid switching (after He & Cao,
//! "Energy-Efficient On-Chip Networks through Profiled Hybrid
//! Switching"): aggregate a packet trace into per-flow statistics, rank
//! flows by volume and persistence, and emit a static [`CircuitPlan`]
//! for the TDM backend to pre-establish — the A/B counterpart to the
//! paper's reactive, frequency-triggered setup protocol.

use std::collections::HashMap;

use noc_sim::{CircuitPlan, Mesh, NodeId, PlannedFlow};

use crate::trace::{PacketTrace, CLASS_CS};

/// Aggregate statistics for one (src, dst) flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowStats {
    pub src: u32,
    pub dst: u32,
    /// Circuit-eligible flits offered by this flow.
    pub flits: u64,
    /// Circuit-eligible packets offered by this flow.
    pub packets: u64,
    /// First and last injection cycle — `last - first + 1` is the flow's
    /// persistence window.
    pub first: u64,
    pub last: u64,
}

impl FlowStats {
    pub fn span(&self) -> u64 {
        self.last - self.first + 1
    }
}

/// Per-flow circuit-eligible volume, ranked by (flits desc, span desc,
/// (src, dst) asc). The tie-break on node ids keeps the profile — and
/// every plan derived from it — fully deterministic.
pub fn profile_trace(trace: &PacketTrace) -> Vec<FlowStats> {
    let mut flows: HashMap<(u32, u32), FlowStats> = HashMap::new();
    for r in &trace.records {
        if r.class != CLASS_CS || r.src == r.dst {
            continue;
        }
        let e = flows.entry((r.src, r.dst)).or_insert(FlowStats {
            src: r.src,
            dst: r.dst,
            flits: 0,
            packets: 0,
            first: r.cycle,
            last: r.cycle,
        });
        e.flits += r.size as u64;
        e.packets += 1;
        e.last = r.cycle;
    }
    let mut out: Vec<FlowStats> = flows.into_values().collect();
    out.sort_by(|a, b| {
        b.flits
            .cmp(&a.flits)
            .then(b.span().cmp(&a.span()))
            .then((a.src, a.dst).cmp(&(b.src, b.dst)))
    });
    out
}

/// Profile `trace` and plan circuits for its `top` heaviest flows whose
/// endpoints are at least 2 hops apart on `mesh` — the same distance
/// guard the reactive setup protocol applies (a 1-hop circuit saves no
/// router traversal).
pub fn plan_top_flows(trace: &PacketTrace, mesh: &Mesh, top: usize, pin: bool) -> CircuitPlan {
    let flows = profile_trace(trace)
        .into_iter()
        .filter(|f| mesh.hops(NodeId(f.src), NodeId(f.dst)) >= 2)
        .take(top)
        .map(|f| PlannedFlow {
            src: NodeId(f.src),
            dst: NodeId(f.dst),
        })
        .collect();
    CircuitPlan { flows, pin }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceRecord, CLASS_PS};

    fn rec(cycle: u64, src: u32, dst: u32, class: u8, size: u8) -> TraceRecord {
        TraceRecord {
            cycle,
            src,
            dst,
            class,
            size,
        }
    }

    #[test]
    fn profile_aggregates_and_ranks_by_volume_then_span() {
        let t = PacketTrace {
            nodes: 16,
            records: vec![
                rec(0, 0, 15, CLASS_CS, 5),
                rec(1, 2, 3, CLASS_CS, 5),
                rec(2, 0, 15, CLASS_CS, 5),
                rec(3, 1, 14, CLASS_CS, 5),
                rec(3, 1, 14, CLASS_CS, 5),
                rec(9, 4, 4, CLASS_CS, 5),  // self-flow: ignored
                rec(9, 5, 6, CLASS_PS, 99), // ps-only: ignored
            ],
        };
        let p = profile_trace(&t);
        assert_eq!(p.len(), 3);
        // 0→15 and 1→14 both offer 10 flits; 0→15 spans cycles 0..=2
        // (span 3) vs 1→14's span 1, so volume tie breaks on span.
        assert_eq!(
            (p[0].src, p[0].dst, p[0].flits, p[0].packets),
            (0, 15, 10, 2)
        );
        assert_eq!(p[0].span(), 3);
        assert_eq!((p[1].src, p[1].dst), (1, 14));
        assert_eq!((p[2].src, p[2].dst, p[2].flits), (2, 3, 5));
    }

    #[test]
    fn ranking_is_deterministic_on_full_ties() {
        let t = PacketTrace {
            nodes: 16,
            records: vec![rec(0, 9, 1, CLASS_CS, 5), rec(0, 3, 7, CLASS_CS, 5)],
        };
        let p = profile_trace(&t);
        assert_eq!((p[0].src, p[0].dst), (3, 7));
        assert_eq!((p[1].src, p[1].dst), (9, 1));
    }

    #[test]
    fn plan_filters_short_flows_and_truncates() {
        let mesh = Mesh::square(4);
        let t = PacketTrace {
            nodes: 16,
            records: vec![
                rec(0, 0, 15, CLASS_CS, 5), // 6 hops
                rec(0, 0, 15, CLASS_CS, 5),
                rec(1, 0, 1, CLASS_CS, 5), // 1 hop: filtered
                rec(1, 0, 1, CLASS_CS, 5),
                rec(1, 0, 1, CLASS_CS, 5),
                rec(2, 5, 10, CLASS_CS, 5), // 2 hops
            ],
        };
        let plan = plan_top_flows(&t, &mesh, 8, true);
        assert!(plan.pin);
        assert_eq!(
            plan.flows,
            vec![
                PlannedFlow {
                    src: NodeId(0),
                    dst: NodeId(15)
                },
                PlannedFlow {
                    src: NodeId(5),
                    dst: NodeId(10)
                },
            ]
        );
        let one = plan_top_flows(&t, &mesh, 1, false);
        assert_eq!(one.flows.len(), 1);
        assert!(!one.pin);
    }
}
