//! The match-action traffic/policy DSL: a declarative rule table
//! (matched on source, destination, class or a source region) compiled
//! at scenario-build time into closures on the hot injection path —
//! in the spirit of P4 match-action pipelines compiled to Rust
//! (oxidecomputer/p4), scaled down to NoC injection.
//!
//! Compilation turns every match clause into a node **bitset** or a
//! class flag, so applying a rule per offered packet is a handful of
//! word tests — zero per-cycle interpretation of the JSON table. An
//! empty table compiles to an empty rule list and the scenario layer
//! skips the wrapper entirely, keeping bit-identity with policy-free
//! runs.

use noc_sim::{Mesh, NodeId, Packet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which traffic class a rule matches (the packet's circuit eligibility).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassMatch {
    /// Circuit-switching-eligible packets.
    Cs,
    /// Packet-switched-only packets.
    Ps,
}

/// An inclusive rectangle of *source* coordinates: `(x0, y0, x1, y1)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    pub x0: u16,
    pub y0: u16,
    pub x1: u16,
    pub y1: u16,
}

/// What a matched rule does to the packet. All fields compose; `drop`
/// wins over everything else.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ActionSpec {
    /// Inject-rate override: keep the packet with this probability
    /// (an independent Bernoulli thinning of the matched flow).
    pub scale: Option<f64>,
    /// Discard the packet before it reaches a NIC.
    pub drop: bool,
    /// Class rewrite: force circuit eligibility on or off.
    pub cs_eligible: Option<bool>,
    /// Destination rewrite: redirect the packet to this node.
    pub redirect: Option<u32>,
}

/// One declarative rule: every present match clause must hold (AND);
/// the first matching rule's action applies (first-match-wins).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RuleSpec {
    /// Source node whitelist.
    pub src: Option<Vec<u32>>,
    /// Destination node whitelist.
    pub dst: Option<Vec<u32>>,
    /// Class filter.
    pub class: Option<ClassMatch>,
    /// Source-coordinate rectangle.
    pub region: Option<Region>,
    pub action: ActionSpec,
}

/// A node-set as a bitset over node indices.
struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    fn new(len: usize) -> Self {
        NodeSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    fn insert(&mut self, n: u32) {
        self.words[n as usize / 64] |= 1 << (n % 64);
    }

    #[inline]
    fn contains(&self, n: u32) -> bool {
        self.words[n as usize / 64] & (1 << (n % 64)) != 0
    }
}

/// One compiled rule: precomputed match sets plus the action.
struct CompiledRule {
    src: Option<NodeSet>,
    dst: Option<NodeSet>,
    class: Option<ClassMatch>,
    action: ActionSpec,
}

impl CompiledRule {
    #[inline]
    fn matches(&self, src: NodeId, pkt: &Packet) -> bool {
        if let Some(set) = &self.src {
            if !set.contains(src.0) {
                return false;
            }
        }
        if let Some(set) = &self.dst {
            if !set.contains(pkt.dst.0) {
                return false;
            }
        }
        match self.class {
            Some(ClassMatch::Cs) => pkt.cs_eligible,
            Some(ClassMatch::Ps) => !pkt.cs_eligible,
            None => true,
        }
    }
}

/// The compiled rule table. Thinning (`scale`) draws from its own seeded
/// RNG, so a policy-carrying run is deterministic and the workload's own
/// RNG stream is untouched.
pub struct CompiledPolicy {
    rules: Vec<CompiledRule>,
    rng: StdRng,
}

impl CompiledPolicy {
    /// Compile a rule table against `mesh`. Region clauses are expanded
    /// into node bitsets here, at build time. Errors on out-of-range
    /// nodes, empty regions and invalid scales.
    pub fn compile(rules: &[RuleSpec], mesh: &Mesh, seed: u64) -> Result<Self, String> {
        let len = mesh.len();
        let check = |n: u32, what: &str| -> Result<u32, String> {
            if (n as usize) < len {
                Ok(n)
            } else {
                Err(format!(
                    "policy: {what} node {n} out of range (mesh has {len} nodes)"
                ))
            }
        };
        let mut compiled = Vec::with_capacity(rules.len());
        for (i, rule) in rules.iter().enumerate() {
            if let Some(s) = rule.action.scale {
                if !(0.0..=1.0).contains(&s) {
                    return Err(format!("policy rule {i}: scale {s} outside [0, 1]"));
                }
            }
            if let Some(rd) = rule.action.redirect {
                check(rd, "redirect")?;
            }
            // Source set: list ∩ region, either alone, or no constraint.
            let src = match (&rule.src, &rule.region) {
                (None, None) => None,
                (list, region) => {
                    let mut set = NodeSet::new(len);
                    let in_region = |n: u32| {
                        region.is_none_or(|r| {
                            let c = mesh.coord(NodeId(n));
                            c.x >= r.x0 && c.x <= r.x1 && c.y >= r.y0 && c.y <= r.y1
                        })
                    };
                    let mut any = false;
                    match list {
                        Some(nodes) => {
                            for &n in nodes {
                                check(n, "src")?;
                                if in_region(n) {
                                    set.insert(n);
                                    any = true;
                                }
                            }
                        }
                        None => {
                            for n in mesh.nodes() {
                                if in_region(n.0) {
                                    set.insert(n.0);
                                    any = true;
                                }
                            }
                        }
                    }
                    if !any {
                        return Err(format!("policy rule {i}: empty source match set"));
                    }
                    Some(set)
                }
            };
            let dst = match &rule.dst {
                None => None,
                Some(nodes) => {
                    let mut set = NodeSet::new(len);
                    for &n in nodes {
                        set.insert(check(n, "dst")?);
                    }
                    Some(set)
                }
            };
            compiled.push(CompiledRule {
                src,
                dst,
                class: rule.class,
                action: rule.action.clone(),
            });
        }
        Ok(CompiledPolicy {
            rules: compiled,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Apply the table to one offered packet (first matching rule wins).
    /// Returns `false` when the packet should be discarded.
    pub fn apply(&mut self, src: NodeId, pkt: &mut Packet) -> bool {
        let CompiledPolicy { rules, rng } = self;
        for rule in rules.iter() {
            if !rule.matches(src, pkt) {
                continue;
            }
            if rule.action.drop {
                return false;
            }
            if let Some(s) = rule.action.scale {
                if !rng.random_bool(s) {
                    return false;
                }
            }
            if let Some(ce) = rule.action.cs_eligible {
                pkt.cs_eligible = ce;
            }
            if let Some(rd) = rule.action.redirect {
                pkt.dst = NodeId(rd);
            }
            return true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::PacketFactory;

    fn pkt(f: &mut PacketFactory, src: u32, dst: u32) -> (NodeId, Packet) {
        (NodeId(src), f.data(NodeId(src), NodeId(dst), 5, 0, true))
    }

    #[test]
    fn empty_table_passes_everything_through() {
        let mesh = Mesh::square(4);
        let mut pol = CompiledPolicy::compile(&[], &mesh, 1).unwrap();
        assert!(pol.is_empty());
        let mut f = PacketFactory::new();
        let (s, mut p) = pkt(&mut f, 0, 15);
        let before = p.clone();
        assert!(pol.apply(s, &mut p));
        assert_eq!(p.dst, before.dst);
        assert_eq!(p.cs_eligible, before.cs_eligible);
    }

    #[test]
    fn drop_and_first_match_wins() {
        let mesh = Mesh::square(4);
        let rules = vec![
            RuleSpec {
                src: Some(vec![3]),
                action: ActionSpec {
                    drop: true,
                    ..Default::default()
                },
                ..Default::default()
            },
            RuleSpec {
                // Would redirect node 3 too, but the drop rule fires first.
                action: ActionSpec {
                    redirect: Some(0),
                    ..Default::default()
                },
                ..Default::default()
            },
        ];
        let mut pol = CompiledPolicy::compile(&rules, &mesh, 1).unwrap();
        let mut f = PacketFactory::new();
        let (s, mut p) = pkt(&mut f, 3, 9);
        assert!(!pol.apply(s, &mut p));
        let (s, mut p) = pkt(&mut f, 4, 9);
        assert!(pol.apply(s, &mut p));
        assert_eq!(p.dst, NodeId(0));
    }

    #[test]
    fn class_match_and_rewrite() {
        let mesh = Mesh::square(4);
        let rules = vec![RuleSpec {
            class: Some(ClassMatch::Cs),
            action: ActionSpec {
                cs_eligible: Some(false),
                ..Default::default()
            },
            ..Default::default()
        }];
        let mut pol = CompiledPolicy::compile(&rules, &mesh, 1).unwrap();
        let mut f = PacketFactory::new();
        let (s, mut p) = pkt(&mut f, 0, 9);
        assert!(p.cs_eligible);
        assert!(pol.apply(s, &mut p));
        assert!(!p.cs_eligible);
        // Now ps: the Cs rule no longer matches, packet is untouched.
        assert!(pol.apply(s, &mut p));
        assert!(!p.cs_eligible);
    }

    #[test]
    fn region_matches_source_coordinates() {
        let mesh = Mesh::square(4);
        // Left half of the mesh: x in 0..=1.
        let rules = vec![RuleSpec {
            region: Some(Region {
                x0: 0,
                y0: 0,
                x1: 1,
                y1: 3,
            }),
            action: ActionSpec {
                drop: true,
                ..Default::default()
            },
            ..Default::default()
        }];
        let mut pol = CompiledPolicy::compile(&rules, &mesh, 1).unwrap();
        let mut f = PacketFactory::new();
        for n in mesh.nodes() {
            let (s, mut p) = pkt(&mut f, n.0, (n.0 + 1) % 16);
            let kept = pol.apply(s, &mut p);
            assert_eq!(kept, mesh.coord(n).x > 1, "node {n:?}");
        }
    }

    #[test]
    fn src_list_intersects_region() {
        let mesh = Mesh::square(4);
        let rules = vec![RuleSpec {
            src: Some(vec![0, 3]), // 3 is at x=3, outside the region
            region: Some(Region {
                x0: 0,
                y0: 0,
                x1: 1,
                y1: 3,
            }),
            action: ActionSpec {
                drop: true,
                ..Default::default()
            },
            ..Default::default()
        }];
        let mut pol = CompiledPolicy::compile(&rules, &mesh, 1).unwrap();
        let mut f = PacketFactory::new();
        let (s, mut p) = pkt(&mut f, 0, 9);
        assert!(!pol.apply(s, &mut p));
        let (s, mut p) = pkt(&mut f, 3, 9);
        assert!(pol.apply(s, &mut p));
    }

    #[test]
    fn scale_thins_deterministically() {
        let mesh = Mesh::square(4);
        let rules = vec![RuleSpec {
            action: ActionSpec {
                scale: Some(0.25),
                ..Default::default()
            },
            ..Default::default()
        }];
        let run = |seed| {
            let mut pol = CompiledPolicy::compile(&rules, &mesh, seed).unwrap();
            let mut f = PacketFactory::new();
            let mut kept = Vec::new();
            for i in 0..4000u32 {
                let (s, mut p) = pkt(&mut f, i % 16, (i + 1) % 16);
                kept.push(pol.apply(s, &mut p));
            }
            kept
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same thinning");
        assert_ne!(a, run(8));
        let frac = a.iter().filter(|&&k| k).count() as f64 / a.len() as f64;
        assert!((frac - 0.25).abs() < 0.05, "kept fraction {frac}");
    }

    #[test]
    fn compile_rejects_bad_rules() {
        let mesh = Mesh::square(4);
        let bad_node = vec![RuleSpec {
            src: Some(vec![16]),
            ..Default::default()
        }];
        assert!(CompiledPolicy::compile(&bad_node, &mesh, 1).is_err());
        let bad_scale = vec![RuleSpec {
            action: ActionSpec {
                scale: Some(1.5),
                ..Default::default()
            },
            ..Default::default()
        }];
        assert!(CompiledPolicy::compile(&bad_scale, &mesh, 1).is_err());
        let empty_region = vec![RuleSpec {
            region: Some(Region {
                x0: 9,
                y0: 9,
                x1: 9,
                y1: 9,
            }),
            ..Default::default()
        }];
        assert!(CompiledPolicy::compile(&empty_region, &mesh, 1).is_err());
        let bad_redirect = vec![RuleSpec {
            action: ActionSpec {
                redirect: Some(99),
                ..Default::default()
            },
            ..Default::default()
        }];
        assert!(CompiledPolicy::compile(&bad_redirect, &mesh, 1).is_err());
    }
}
