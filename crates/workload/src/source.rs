//! Trace replay through the `Workload` seam.

use std::sync::Arc;

use noc_sim::{Cycle, NodeId, Packet};
use noc_traffic::{PacketFactory, Workload};

use crate::trace::{PacketTrace, CLASS_CS};

/// Replays a [`PacketTrace`] as a workload: tick `n` emits exactly the
/// records whose `cycle` field is `n`.
///
/// The source keeps its *own* tick counter rather than trusting the
/// fabric clock: the engine's warm-up/measurement loops tick the workload
/// once per fabric step from cycle 0, but a checkpoint-restored fabric
/// resumes mid-stream — [`TraceSource::skip_ticks`] advances the cursor
/// (and the packet-id allocator, via the same code path as a live replay)
/// so forked runs continue bit-identically, mirroring
/// `SyntheticSource::skip_ticks`.
pub struct TraceSource {
    trace: Arc<PacketTrace>,
    /// Index of the first unreplayed record.
    cursor: usize,
    /// The tick the next call to `tick` will emit.
    next_tick: u64,
    pub factory: PacketFactory,
    /// Mean offered load in flits/node/cycle over the trace span.
    offered: f64,
}

impl TraceSource {
    pub fn new(trace: Arc<PacketTrace>) -> Self {
        let span = trace.span();
        let offered = if span == 0 || trace.nodes == 0 {
            0.0
        } else {
            trace.total_flits() as f64 / (span as f64 * trace.nodes as f64)
        };
        TraceSource {
            trace,
            cursor: 0,
            next_tick: 0,
            factory: PacketFactory::new(),
            offered,
        }
    }

    pub fn trace(&self) -> &Arc<PacketTrace> {
        &self.trace
    }

    /// All records replayed: further ticks emit nothing.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.trace.records.len()
    }

    /// Fast-forward past `ticks` injection cycles by replaying them into
    /// a discarding sink, so cursor and packet-id state land exactly
    /// where a live run's would.
    pub fn skip_ticks(&mut self, ticks: u64) {
        for now in 0..ticks {
            Workload::tick(self, now, false, &mut |_, _| {});
        }
    }

    fn emit(&mut self, measured: bool, sink: &mut dyn FnMut(NodeId, Packet)) {
        let t = self.next_tick;
        while let Some(r) = self.trace.records.get(self.cursor) {
            if r.cycle != t {
                break;
            }
            let mut pkt = self
                .factory
                .data(NodeId(r.src), NodeId(r.dst), r.size, t, measured);
            pkt.cs_eligible = r.class == CLASS_CS;
            sink(NodeId(r.src), pkt);
            self.cursor += 1;
        }
        self.next_tick = t + 1;
    }
}

impl Workload for TraceSource {
    fn tick(&mut self, _now: Cycle, measured: bool, sink: &mut dyn FnMut(NodeId, Packet)) {
        self.emit(measured, sink);
    }

    fn offered_load(&self) -> f64 {
        self.offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceRecord, CLASS_PS};

    fn sample() -> Arc<PacketTrace> {
        Arc::new(PacketTrace {
            nodes: 16,
            records: vec![
                TraceRecord {
                    cycle: 0,
                    src: 1,
                    dst: 2,
                    class: CLASS_CS,
                    size: 5,
                },
                TraceRecord {
                    cycle: 0,
                    src: 4,
                    dst: 8,
                    class: CLASS_PS,
                    size: 5,
                },
                TraceRecord {
                    cycle: 3,
                    src: 1,
                    dst: 2,
                    class: CLASS_CS,
                    size: 4,
                },
                TraceRecord {
                    cycle: 5,
                    src: 9,
                    dst: 0,
                    class: CLASS_CS,
                    size: 1,
                },
            ],
        })
    }

    fn drain(src: &mut TraceSource, from: u64, to: u64) -> Vec<(u64, u32, u64, u32, bool, u8)> {
        let mut v = Vec::new();
        for now in from..to {
            Workload::tick(src, now, true, &mut |n, p| {
                v.push((now, n.0, p.id.0, p.dst.0, p.cs_eligible, p.len_flits))
            });
        }
        v
    }

    #[test]
    fn replays_records_at_their_cycle() {
        let mut src = TraceSource::new(sample());
        let got = drain(&mut src, 0, 8);
        assert_eq!(
            got,
            vec![
                (0, 1, 0, 2, true, 5),
                (0, 4, 1, 8, false, 5),
                (3, 1, 2, 2, true, 4),
                (5, 9, 3, 0, true, 1),
            ]
        );
        assert!(src.is_exhausted());
        // Past the end, nothing more is emitted.
        assert!(drain(&mut src, 8, 20).is_empty());
    }

    #[test]
    fn skip_ticks_matches_a_live_replay() {
        let mut live = TraceSource::new(sample());
        drain(&mut live, 0, 4);
        let mut skipped = TraceSource::new(sample());
        skipped.skip_ticks(4);
        assert_eq!(
            live.factory.next_id_preview(),
            skipped.factory.next_id_preview()
        );
        assert_eq!(drain(&mut live, 4, 10), drain(&mut skipped, 4, 10));
    }

    #[test]
    fn internal_clock_ignores_the_fabric_cycle() {
        // A restored fabric resumes at a nonzero cycle; the trace cursor
        // must not care what `now` the engine passes.
        let mut src = TraceSource::new(sample());
        let mut v = Vec::new();
        for now in 1000..1008 {
            Workload::tick(&mut src, now, false, &mut |n, p| v.push((n.0, p.dst.0)));
        }
        assert_eq!(v, vec![(1, 2), (4, 8), (1, 2), (9, 0)]);
    }

    #[test]
    fn offered_load_is_flits_over_span_times_nodes() {
        let src = TraceSource::new(sample());
        // 15 flits over 6 cycles × 16 nodes.
        let want = 15.0 / (6.0 * 16.0);
        assert!((Workload::offered_load(&src) - want).abs() < 1e-12);
        assert_eq!(
            Workload::offered_load(&TraceSource::new(Arc::new(PacketTrace::new(4)))),
            0.0
        );
    }
}
