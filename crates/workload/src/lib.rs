//! # noc-workload — trace-driven workloads, profiled circuits, policy DSL
//!
//! The third workload family next to the synthetic patterns
//! (`noc-traffic`) and the heterogeneous CPU/GPU mixes (`noc-hetero`),
//! in three pillars:
//!
//! * **Trace replay** ([`trace`], [`source`], [`capture`], [`export`]) —
//!   the versioned `NOCTRACE1` packet-trace format (binary + JSON-lines
//!   twin), a [`TraceSource`] that replays a trace through the
//!   `Workload` seam with checkpoint-compatible `skip_ticks` semantics,
//!   an injection-side [`TraceRecorder`] for exact capture, and a
//!   telemetry-side exporter that rebuilds a trace from flit-lifecycle
//!   events.
//! * **Profiled hybrid switching** ([`profile`]) — rank a trace's flows
//!   by volume/persistence and emit a static `CircuitPlan` the TDM
//!   backend pre-establishes at run start, the A/B counterpart to the
//!   paper's reactive setup protocol (after He & Cao's profiled hybrid
//!   switching).
//! * **Match-action policy DSL** ([`policy`]) — declarative match/action
//!   rules compiled at scenario-build time into bitset tests on the hot
//!   injection path.

pub mod capture;
pub mod export;
pub mod policy;
pub mod profile;
pub mod source;
pub mod trace;

pub use capture::{capture_ticks, TraceRecorder};
pub use export::trace_from_events;
pub use policy::{ActionSpec, ClassMatch, CompiledPolicy, Region, RuleSpec};
pub use profile::{plan_top_flows, profile_trace, FlowStats};
pub use source::TraceSource;
pub use trace::{
    PacketTrace, TraceError, TraceRecord, CLASS_CS, CLASS_PS, PACKET_TRACE_MAGIC,
    TRACE_RECORD_BYTES,
};
