//! Telemetry-side trace export: rebuild a replayable [`PacketTrace`]
//! from a run's flit-lifecycle events, closing the capture→replay loop
//! for runs that were traced but not recorded at the injection seam.
//!
//! The join is `Inject` events (cycle, source node, packet id) against
//! the delivered-packet log (destination, length) by packet id. Two
//! documented limits, both absent from the exact injection-side
//! [`TraceRecorder`](crate::TraceRecorder) path (`--trace-export`):
//!
//! * only *delivered* packets can be joined — packets still in flight
//!   when the log was read are skipped (use a fully drained run);
//! * offered circuit eligibility is not observable downstream (the log
//!   records how a packet *was* switched, not what it was allowed), so
//!   every exported data packet is marked [`CLASS_CS`] — exact for the
//!   synthetic workloads where all data is circuit-eligible.
//!
//! Event cycles are fabric time: export from a run whose workload
//! started at cycle 0 (no warm-up skip) for tick-exact replay.

use std::collections::HashMap;

use noc_sim::{DeliveredKind, DeliveredPacket, EventKind, TelemetryEvent};

use crate::trace::{PacketTrace, TraceRecord, CLASS_CS};

/// Join `Inject` telemetry events with the delivered-packet log into a
/// validated trace over `nodes` nodes. Records are ordered by
/// (cycle, source, packet id), which is deterministic regardless of how
/// the per-node telemetry rings were merged.
pub fn trace_from_events(
    events: &[TelemetryEvent],
    delivered: &[DeliveredPacket],
    nodes: u32,
) -> PacketTrace {
    let by_id: HashMap<u64, &DeliveredPacket> = delivered
        .iter()
        .filter(|d| d.kind == DeliveredKind::Data)
        .map(|d| (d.id.0, d))
        .collect();
    let mut keyed: Vec<(u64, u32, u64, TraceRecord)> = events
        .iter()
        .filter(|e| e.kind == EventKind::Inject)
        .filter_map(|e| {
            let d = by_id.get(&e.id)?;
            Some((
                e.cycle,
                e.node,
                e.id,
                TraceRecord {
                    cycle: e.cycle,
                    src: e.node,
                    dst: d.dst.0,
                    class: CLASS_CS,
                    size: d.len_flits,
                },
            ))
        })
        .collect();
    keyed.sort_by_key(|&(cycle, node, id, _)| (cycle, node, id));
    PacketTrace {
        nodes,
        records: keyed.into_iter().map(|(_, _, _, r)| r).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{Cycle, MsgClass, NodeId, PacketId, Switching};

    fn inject(cycle: u64, node: u32, id: u64) -> TelemetryEvent {
        TelemetryEvent {
            cycle,
            node,
            kind: EventKind::Inject,
            port: 0,
            id,
        }
    }

    fn delivered(id: u64, src: u32, dst: u32, len: u8) -> DeliveredPacket {
        DeliveredPacket {
            id: PacketId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class: MsgClass::Data,
            kind: DeliveredKind::Data,
            switching: Switching::Packet,
            len_flits: len,
            created: 0 as Cycle,
            delivered: 40 as Cycle,
            measured: true,
        }
    }

    #[test]
    fn joins_injects_with_the_delivered_log() {
        let events = vec![
            inject(5, 2, 10),
            inject(1, 0, 11),
            // Non-inject events and unmatched ids are skipped.
            TelemetryEvent {
                cycle: 2,
                node: 1,
                kind: EventKind::Eject,
                port: 0,
                id: 10,
            },
            inject(3, 4, 99),
        ];
        let log = vec![delivered(10, 2, 7, 5), delivered(11, 0, 3, 4)];
        let t = trace_from_events(&events, &log, 9);
        t.validate().unwrap();
        assert_eq!(
            t.records,
            vec![
                TraceRecord {
                    cycle: 1,
                    src: 0,
                    dst: 3,
                    class: CLASS_CS,
                    size: 4
                },
                TraceRecord {
                    cycle: 5,
                    src: 2,
                    dst: 7,
                    class: CLASS_CS,
                    size: 5
                },
            ]
        );
    }

    #[test]
    fn config_deliveries_are_ignored() {
        let events = vec![inject(0, 0, 1)];
        let mut d = delivered(1, 0, 3, 1);
        d.kind = DeliveredKind::Ack;
        let t = trace_from_events(&events, &[d], 4);
        assert!(t.records.is_empty());
    }

    #[test]
    fn ordering_is_independent_of_event_merge_order() {
        let log = vec![delivered(1, 3, 0, 5), delivered(2, 1, 2, 5)];
        let a = trace_from_events(&[inject(4, 3, 1), inject(4, 1, 2)], &log, 4);
        let b = trace_from_events(&[inject(4, 1, 2), inject(4, 3, 1)], &log, 4);
        assert_eq!(a, b);
    }
}
