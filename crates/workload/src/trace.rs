//! The `NOCTRACE1` packet-trace format: a versioned, deterministic record
//! of *injection decisions* — which packets enter the network, where and
//! when — independent of how the fabric then moves them.
//!
//! Two on-disk encodings share one in-memory type and one validator:
//!
//! * **binary** — the 9-byte magic `NOCTRACE1`, a `u32` node count, a
//!   `u64` record count, then fixed 18-byte little-endian records of
//!   `{cycle: u64, src: u32, dst: u32, class: u8, size: u8}`. This is the
//!   *canonical* encoding: content hashes (cache keys) are computed over
//!   these bytes, so a hand-authored text trace and its binary twin hash
//!   identically.
//! * **text** — JSON lines for hand-authoring: a header line
//!   `{"format":"NOCTRACE1","nodes":N}` followed by one flat object per
//!   record. Parsed by a small strict scanner (the vendored serde_json is
//!   serialize-only), blank lines and `#` comments allowed.
//!
//! `class` 0 means the packet is circuit-switching eligible; `class` 1
//! pins it to packet switching. `size` is the packet length in flits
//! (1..=255). Records must be sorted by non-decreasing cycle — the replay
//! source walks them with a cursor, never a search.

/// Magic prefix of the binary encoding (doubles as the format version:
/// breaking changes rename to `NOCTRACE2`).
pub const PACKET_TRACE_MAGIC: [u8; 9] = *b"NOCTRACE1";

/// Fixed size of one binary record.
pub const TRACE_RECORD_BYTES: usize = 18;

/// `class` value for circuit-switching-eligible data.
pub const CLASS_CS: u8 = 0;
/// `class` value for packet-switched-only data.
pub const CLASS_PS: u8 = 1;

/// One injection: at `cycle` (workload ticks since the source started),
/// node `src` offers a `size`-flit packet for `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    pub cycle: u64,
    pub src: u32,
    pub dst: u32,
    /// [`CLASS_CS`] or [`CLASS_PS`].
    pub class: u8,
    /// Packet length in flits (>= 1).
    pub size: u8,
}

/// A validated packet trace: the node count it was captured against plus
/// the cycle-sorted records.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PacketTrace {
    pub nodes: u32,
    pub records: Vec<TraceRecord>,
}

/// Everything that can be wrong with a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Neither the binary magic nor parseable UTF-8 text.
    BadMagic,
    /// The byte stream ended mid-header or mid-record.
    Truncated { offset: usize },
    /// Bytes left over after the declared record count.
    Trailing { extra: usize },
    /// A record references a node outside `0..nodes`.
    NodeOutOfRange { index: usize, node: u32, nodes: u32 },
    /// Record `index` has a smaller cycle than its predecessor.
    NonMonotone { index: usize, cycle: u64, prev: u64 },
    /// `class` is neither [`CLASS_CS`] nor [`CLASS_PS`].
    BadClass { index: usize, class: u8 },
    /// `size` is zero (a packet needs at least one flit).
    BadSize { index: usize },
    /// A text-format line failed to parse (1-based line number).
    Text { line: usize, msg: String },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a NOCTRACE1 trace (bad magic)"),
            TraceError::Truncated { offset } => {
                write!(f, "truncated trace: unexpected end at byte {offset}")
            }
            TraceError::Trailing { extra } => {
                write!(f, "trailing garbage: {extra} bytes after the last record")
            }
            TraceError::NodeOutOfRange { index, node, nodes } => write!(
                f,
                "record {index}: node {node} out of range (trace declares {nodes} nodes)"
            ),
            TraceError::NonMonotone { index, cycle, prev } => write!(
                f,
                "record {index}: cycle {cycle} goes backwards (previous record at {prev})"
            ),
            TraceError::BadClass { index, class } => {
                write!(
                    f,
                    "record {index}: unknown class {class} (want 0=cs or 1=ps)"
                )
            }
            TraceError::BadSize { index } => {
                write!(f, "record {index}: zero-flit packet")
            }
            TraceError::Text { line, msg } => write!(f, "trace text line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl PacketTrace {
    pub fn new(nodes: u32) -> Self {
        PacketTrace {
            nodes,
            records: Vec::new(),
        }
    }

    /// Check the structural invariants shared by both encodings.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut prev = 0u64;
        for (index, r) in self.records.iter().enumerate() {
            if r.src >= self.nodes || r.dst >= self.nodes {
                let node = if r.src >= self.nodes { r.src } else { r.dst };
                return Err(TraceError::NodeOutOfRange {
                    index,
                    node,
                    nodes: self.nodes,
                });
            }
            if r.cycle < prev {
                return Err(TraceError::NonMonotone {
                    index,
                    cycle: r.cycle,
                    prev,
                });
            }
            if r.class != CLASS_CS && r.class != CLASS_PS {
                return Err(TraceError::BadClass {
                    index,
                    class: r.class,
                });
            }
            if r.size == 0 {
                return Err(TraceError::BadSize { index });
            }
            prev = r.cycle;
        }
        Ok(())
    }

    /// Total offered flits across the whole trace.
    pub fn total_flits(&self) -> u64 {
        self.records.iter().map(|r| r.size as u64).sum()
    }

    /// Number of injection cycles the trace spans (last cycle + 1).
    pub fn span(&self) -> u64 {
        self.records.last().map_or(0, |r| r.cycle + 1)
    }

    /// Canonical binary encoding; content hashes are taken over these
    /// bytes regardless of which encoding a trace file used.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            PACKET_TRACE_MAGIC.len() + 12 + self.records.len() * TRACE_RECORD_BYTES,
        );
        out.extend_from_slice(&PACKET_TRACE_MAGIC);
        out.extend_from_slice(&self.nodes.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for r in &self.records {
            out.extend_from_slice(&r.cycle.to_le_bytes());
            out.extend_from_slice(&r.src.to_le_bytes());
            out.extend_from_slice(&r.dst.to_le_bytes());
            out.push(r.class);
            out.push(r.size);
        }
        out
    }

    /// Decode and validate the binary encoding.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, TraceError> {
        let magic = PACKET_TRACE_MAGIC.len();
        if bytes.len() < magic || bytes[..magic] != PACKET_TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let header_end = magic + 12;
        if bytes.len() < header_end {
            return Err(TraceError::Truncated {
                offset: bytes.len(),
            });
        }
        let nodes = u32::from_le_bytes(bytes[magic..magic + 4].try_into().unwrap());
        let count = u64::from_le_bytes(bytes[magic + 4..header_end].try_into().unwrap());
        let body = &bytes[header_end..];
        let want =
            (count as usize)
                .checked_mul(TRACE_RECORD_BYTES)
                .ok_or(TraceError::Truncated {
                    offset: bytes.len(),
                })?;
        if body.len() < want {
            return Err(TraceError::Truncated {
                offset: bytes.len(),
            });
        }
        if body.len() > want {
            return Err(TraceError::Trailing {
                extra: body.len() - want,
            });
        }
        let mut records = Vec::with_capacity(count as usize);
        for chunk in body.chunks_exact(TRACE_RECORD_BYTES) {
            records.push(TraceRecord {
                cycle: u64::from_le_bytes(chunk[0..8].try_into().unwrap()),
                src: u32::from_le_bytes(chunk[8..12].try_into().unwrap()),
                dst: u32::from_le_bytes(chunk[12..16].try_into().unwrap()),
                class: chunk[16],
                size: chunk[17],
            });
        }
        let trace = PacketTrace { nodes, records };
        trace.validate()?;
        Ok(trace)
    }

    /// JSON-lines text encoding for hand-authoring and diffing.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"format\":\"NOCTRACE1\",\"nodes\":{}}}\n",
            self.nodes
        ));
        for r in &self.records {
            out.push_str(&format!(
                "{{\"cycle\":{},\"src\":{},\"dst\":{},\"class\":{},\"size\":{}}}\n",
                r.cycle, r.src, r.dst, r.class, r.size
            ));
        }
        out
    }

    /// Parse and validate the JSON-lines text encoding.
    pub fn from_text(text: &str) -> Result<Self, TraceError> {
        let mut trace: Option<PacketTrace> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let s = raw.trim();
            if s.is_empty() || s.starts_with('#') {
                continue;
            }
            let fields = parse_flat_object(s).map_err(|msg| TraceError::Text { line, msg })?;
            match &mut trace {
                None => {
                    let fmt = field_str(&fields, "format").ok_or_else(|| TraceError::Text {
                        line,
                        msg: "header needs a \"format\" field".into(),
                    })?;
                    if fmt != "NOCTRACE1" {
                        return Err(TraceError::Text {
                            line,
                            msg: format!("unsupported format {fmt:?}"),
                        });
                    }
                    let nodes = field_num(&fields, "nodes").ok_or_else(|| TraceError::Text {
                        line,
                        msg: "header needs a numeric \"nodes\" field".into(),
                    })?;
                    if fields.len() != 2 {
                        return Err(TraceError::Text {
                            line,
                            msg: "header has unknown fields".into(),
                        });
                    }
                    trace = Some(PacketTrace::new(nodes as u32));
                }
                Some(t) => {
                    let get = |key: &str| {
                        field_num(&fields, key).ok_or_else(|| TraceError::Text {
                            line,
                            msg: format!("record needs a numeric {key:?} field"),
                        })
                    };
                    let (cycle, src, dst, class, size) = (
                        get("cycle")?,
                        get("src")?,
                        get("dst")?,
                        get("class")?,
                        get("size")?,
                    );
                    if fields.len() != 5 {
                        return Err(TraceError::Text {
                            line,
                            msg: "record has unknown fields".into(),
                        });
                    }
                    if src > u32::MAX as u64 || dst > u32::MAX as u64 || class > 255 || size > 255 {
                        return Err(TraceError::Text {
                            line,
                            msg: "field value out of range".into(),
                        });
                    }
                    t.records.push(TraceRecord {
                        cycle,
                        src: src as u32,
                        dst: dst as u32,
                        class: class as u8,
                        size: size as u8,
                    });
                }
            }
        }
        let trace = trace.ok_or(TraceError::Text {
            line: 0,
            msg: "empty trace text (missing header line)".into(),
        })?;
        trace.validate()?;
        Ok(trace)
    }

    /// Decode either encoding: binary when the magic matches, otherwise
    /// UTF-8 text.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.starts_with(&PACKET_TRACE_MAGIC) {
            return PacketTrace::from_binary(bytes);
        }
        let text = std::str::from_utf8(bytes).map_err(|_| TraceError::BadMagic)?;
        PacketTrace::from_text(text)
    }
}

/// Value of one field in a flat JSON-lines object.
enum Field {
    Num(u64),
    Str(String),
}

fn field_num(fields: &[(String, Field)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match v {
        Field::Num(n) if k == key => Some(*n),
        _ => None,
    })
}

fn field_str<'a>(fields: &'a [(String, Field)], key: &str) -> Option<&'a str> {
    fields.iter().find_map(|(k, v)| match v {
        Field::Str(s) if k == key => Some(s.as_str()),
        _ => None,
    })
}

/// Strict scanner for one flat JSON object: string keys, unsigned-integer
/// or plain-string values, no nesting, no escapes. Exactly the subset the
/// text twin emits.
fn parse_flat_object(s: &str) -> Result<Vec<(String, Field)>, String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    };
    let expect = |i: &mut usize, c: u8| -> Result<(), String> {
        if *i < b.len() && b[*i] == c {
            *i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at column {}", c as char, *i + 1))
        }
    };
    let parse_str = |i: &mut usize| -> Result<String, String> {
        expect(i, b'"')?;
        let start = *i;
        while *i < b.len() && b[*i] != b'"' {
            if b[*i] == b'\\' {
                return Err("escape sequences not supported".into());
            }
            *i += 1;
        }
        if *i >= b.len() {
            return Err("unterminated string".into());
        }
        let out = s[start..*i].to_string();
        *i += 1;
        Ok(out)
    };
    skip_ws(&mut i);
    expect(&mut i, b'{')?;
    let mut fields = Vec::new();
    loop {
        skip_ws(&mut i);
        let key = parse_str(&mut i)?;
        skip_ws(&mut i);
        expect(&mut i, b':')?;
        skip_ws(&mut i);
        let value = if i < b.len() && b[i] == b'"' {
            Field::Str(parse_str(&mut i)?)
        } else {
            let start = i;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            if i == start {
                return Err(format!("expected a value at column {}", i + 1));
            }
            Field::Num(
                s[start..i]
                    .parse()
                    .map_err(|_| format!("number out of range at column {}", start + 1))?,
            )
        };
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate field {key:?}"));
        }
        fields.push((key, value));
        skip_ws(&mut i);
        if i < b.len() && b[i] == b',' {
            i += 1;
            continue;
        }
        break;
    }
    expect(&mut i, b'}')?;
    skip_ws(&mut i);
    if i != b.len() {
        return Err(format!("trailing characters at column {}", i + 1));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PacketTrace {
        PacketTrace {
            nodes: 16,
            records: vec![
                TraceRecord {
                    cycle: 0,
                    src: 0,
                    dst: 5,
                    class: CLASS_CS,
                    size: 5,
                },
                TraceRecord {
                    cycle: 0,
                    src: 3,
                    dst: 9,
                    class: CLASS_PS,
                    size: 5,
                },
                TraceRecord {
                    cycle: 2,
                    src: 0,
                    dst: 5,
                    class: CLASS_CS,
                    size: 5,
                },
                TraceRecord {
                    cycle: 7,
                    src: 15,
                    dst: 0,
                    class: CLASS_CS,
                    size: 1,
                },
            ],
        }
    }

    #[test]
    fn binary_round_trips() {
        let t = sample();
        let bytes = t.to_binary();
        assert_eq!(PacketTrace::from_binary(&bytes).unwrap(), t);
        assert_eq!(PacketTrace::decode(&bytes).unwrap(), t);
    }

    #[test]
    fn text_round_trips_and_hashes_like_binary() {
        let t = sample();
        let text = t.to_text();
        let back = PacketTrace::decode(text.as_bytes()).unwrap();
        assert_eq!(back, t);
        // The canonical (hashed) bytes are identical for the twins.
        assert_eq!(back.to_binary(), t.to_binary());
    }

    #[test]
    fn text_allows_comments_and_blank_lines() {
        let text = "# hand-authored\n\n{\"format\":\"NOCTRACE1\",\"nodes\":4}\n\
                    {\"cycle\":1,\"src\":0,\"dst\":3,\"class\":1,\"size\":5}\n";
        let t = PacketTrace::from_text(text).unwrap();
        assert_eq!(t.nodes, 4);
        assert_eq!(t.records.len(), 1);
    }

    #[test]
    fn truncated_record_is_rejected() {
        let mut bytes = sample().to_binary();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            PacketTrace::from_binary(&bytes),
            Err(TraceError::Truncated { .. })
        ));
        // Mid-header truncation too.
        assert!(matches!(
            PacketTrace::from_binary(&bytes[..11]),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().to_binary();
        bytes.push(0);
        assert!(matches!(
            PacketTrace::from_binary(&bytes),
            Err(TraceError::Trailing { extra: 1 })
        ));
    }

    #[test]
    fn out_of_range_node_is_rejected() {
        let mut t = sample();
        t.records[1].dst = 16;
        assert_eq!(
            t.validate(),
            Err(TraceError::NodeOutOfRange {
                index: 1,
                node: 16,
                nodes: 16
            })
        );
        let bytes = t.to_binary();
        assert!(PacketTrace::from_binary(&bytes).is_err());
    }

    #[test]
    fn non_monotone_cycle_is_rejected() {
        let mut t = sample();
        t.records[2].cycle = 0;
        t.records[3].cycle = 1;
        t.records[2].cycle = 3;
        t.records[3].cycle = 2;
        assert_eq!(
            t.validate(),
            Err(TraceError::NonMonotone {
                index: 3,
                cycle: 2,
                prev: 3
            })
        );
        assert!(PacketTrace::decode(&t.to_binary()).is_err());
        assert!(PacketTrace::from_text(&t.to_text()).is_err());
    }

    #[test]
    fn bad_class_and_zero_size_are_rejected() {
        let mut t = sample();
        t.records[0].class = 7;
        assert_eq!(
            t.validate(),
            Err(TraceError::BadClass { index: 0, class: 7 })
        );
        let mut t = sample();
        t.records[0].size = 0;
        assert_eq!(t.validate(), Err(TraceError::BadSize { index: 0 }));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(
            PacketTrace::decode(b"\x00\x01\x02\xff"),
            Err(TraceError::BadMagic)
        );
    }

    #[test]
    fn text_parse_errors_carry_line_numbers() {
        let missing_key = "{\"format\":\"NOCTRACE1\",\"nodes\":4}\n{\"cycle\":1,\"src\":0}\n";
        assert!(matches!(
            PacketTrace::from_text(missing_key),
            Err(TraceError::Text { line: 2, .. })
        ));
        let junk = "{\"format\":\"NOCTRACE1\",\"nodes\":4}\nnot json\n";
        assert!(matches!(
            PacketTrace::from_text(junk),
            Err(TraceError::Text { line: 2, .. })
        ));
        let bad_header = "{\"format\":\"NOCTRACE9\",\"nodes\":4}\n";
        assert!(matches!(
            PacketTrace::from_text(bad_header),
            Err(TraceError::Text { line: 1, .. })
        ));
        assert!(matches!(
            PacketTrace::from_text(""),
            Err(TraceError::Text { line: 0, .. })
        ));
    }

    #[test]
    fn span_and_flits() {
        let t = sample();
        assert_eq!(t.span(), 8);
        assert_eq!(t.total_flits(), 16);
        assert_eq!(PacketTrace::new(4).span(), 0);
    }
}
