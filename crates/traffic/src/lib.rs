//! # noc-traffic — synthetic traffic patterns and open-loop drivers
//!
//! Implements the synthetic-workload methodology of §IV: uniform-random,
//! tornado and transpose patterns (after Dally & Towles / GOAL \[10\]),
//! Bernoulli packet sources parameterised in flits/node/cycle, and an
//! open-loop driver with warm-up, measurement and drain phases.

pub mod driver;
pub mod engine;
pub mod pattern;
pub mod source;

pub use driver::{OpenLoop, PhaseConfig, RunResult};
pub use engine::{
    run_measurement, run_measurement_ctl, run_phases, run_phases_ctl, run_warmup, run_warmup_ctl,
    FreeRun, RunControl, Workload,
};
pub use pattern::TrafficPattern;
pub use source::{PacketFactory, SyntheticSource};
