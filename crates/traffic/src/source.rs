//! Bernoulli packet sources for open-loop synthetic workloads.

use noc_sim::{Cycle, Mesh, NodeId, Packet, PacketId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::pattern::TrafficPattern;

/// Allocates globally unique packet ids and stamps creation metadata.
#[derive(Debug, Default)]
pub struct PacketFactory {
    next: u64,
}

impl PacketFactory {
    pub fn new() -> Self {
        PacketFactory::default()
    }

    pub fn next_id(&mut self) -> PacketId {
        let id = PacketId(self.next);
        self.next += 1;
        id
    }

    /// The id the next allocation would get (the checkpoint watermark:
    /// restored runs record it so forked sources never reuse an id that
    /// is still in flight inside the snapshot).
    pub fn next_id_preview(&self) -> u64 {
        self.next
    }

    /// Raise the allocator to at least `floor` (no-op when already past).
    /// Used when restoring from a checkpoint whose warm-up allocated more
    /// ids than this source's replay did.
    pub fn skip_to(&mut self, floor: u64) {
        self.next = self.next.max(floor);
    }

    /// Build a data packet, marking whether its latency is measured.
    pub fn data(
        &mut self,
        src: NodeId,
        dst: NodeId,
        len_flits: u8,
        now: Cycle,
        measured: bool,
    ) -> Packet {
        let mut p = Packet::data(self.next_id(), src, dst, len_flits, now);
        p.measured = measured;
        p
    }
}

/// A Bernoulli injection process: every node independently creates a packet
/// with probability `rate / packet_len` per cycle, so the offered load is
/// `rate` flits/node/cycle — the unit used across the paper's figures.
pub struct SyntheticSource {
    mesh: Mesh,
    pattern: TrafficPattern,
    /// Offered load in flits/node/cycle.
    rate: f64,
    packet_len: u8,
    rng: StdRng,
    pub factory: PacketFactory,
}

impl SyntheticSource {
    pub fn new(mesh: Mesh, pattern: TrafficPattern, rate: f64, packet_len: u8, seed: u64) -> Self {
        assert!(rate >= 0.0 && packet_len > 0);
        SyntheticSource {
            mesh,
            pattern,
            rate,
            packet_len,
            rng: StdRng::seed_from_u64(seed),
            factory: PacketFactory::new(),
        }
    }

    pub fn pattern(&self) -> &TrafficPattern {
        &self.pattern
    }

    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Fast-forward the source past `ticks` injection cycles by replaying
    /// them into a discarding sink. The RNG draws and packet-id
    /// allocations are exactly those of a live run (`tick` only uses the
    /// cycle number to stamp metadata on the packets it emits, which are
    /// discarded here), so a source skipped by a checkpoint's recorded
    /// warm-up tick count continues bit-identically to the source that
    /// produced the checkpoint.
    pub fn skip_ticks(&mut self, ticks: u64) {
        for now in 0..ticks {
            self.tick(now, false, |_, _| {});
        }
    }

    /// Generate this cycle's new packets; `measured` marks whether they are
    /// in the measurement window.
    ///
    /// On a concentrated mesh each router serves `c` clients, so every
    /// router runs `c` independent Bernoulli trials per cycle and the
    /// offered load per *router* is `c × rate` flits/cycle. With `c == 1`
    /// the RNG call sequence is identical to the historical single-trial
    /// loop, so plain-mesh runs stay bit-identical.
    pub fn tick(&mut self, now: Cycle, measured: bool, mut sink: impl FnMut(NodeId, Packet)) {
        let p_packet = (self.rate / self.packet_len as f64).min(1.0);
        let c = self.mesh.concentration();
        for src in self.mesh.nodes() {
            for _ in 0..c {
                if !self.rng.random_bool(p_packet) {
                    continue;
                }
                if let Some(dst) = self.pattern.dest(&self.mesh, src, &mut self.rng) {
                    let pkt = self.factory.data(src, dst, self.packet_len, now, measured);
                    sink(src, pkt);
                }
            }
        }
    }
}

impl crate::engine::Workload for SyntheticSource {
    fn tick(&mut self, now: Cycle, measured: bool, sink: &mut dyn FnMut(NodeId, Packet)) {
        SyntheticSource::tick(self, now, measured, sink);
    }

    fn offered_load(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_rate_matches_offered_load() {
        let mesh = Mesh::square(6);
        let mut src = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.2, 5, 42);
        let mut flits = 0u64;
        let cycles = 20_000u64;
        for now in 0..cycles {
            src.tick(now, true, |_, p| flits += p.len_flits as u64);
        }
        let rate = flits as f64 / (cycles as f64 * mesh.len() as f64);
        assert!((rate - 0.2).abs() < 0.01, "measured offered load {rate}");
    }

    #[test]
    fn cmesh_injects_c_trials_per_router() {
        let mesh = Mesh::cmesh(4, 4, 4);
        let mut src = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.2, 5, 42);
        let mut flits = 0u64;
        let cycles = 20_000u64;
        for now in 0..cycles {
            src.tick(now, true, |_, p| flits += p.len_flits as u64);
        }
        // Offered load per *router* is c × rate.
        let per_router = flits as f64 / (cycles as f64 * mesh.len() as f64);
        assert!(
            (per_router - 0.8).abs() < 0.03,
            "measured per-router load {per_router}"
        );
    }

    #[test]
    fn unit_concentration_matches_the_legacy_stream() {
        // The c-trial loop with c == 1 must consume the RNG exactly like
        // the historical single-trial path: same seed → same packets.
        let run = |mesh: Mesh| {
            let mut s = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.3, 5, 9);
            let mut v = Vec::new();
            for now in 0..500 {
                s.tick(now, true, |n, p| v.push((now, n, p.dst)));
            }
            v
        };
        assert_eq!(run(Mesh::square(5)), run(Mesh::cmesh(5, 5, 1)));
    }

    #[test]
    fn skip_ticks_matches_a_live_replay() {
        // A skipped source must continue exactly where a live one that
        // ticked the same number of cycles does: same RNG position, same
        // next packet id.
        let mesh = Mesh::square(5);
        let mut live = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.25, 5, 77);
        for now in 0..300 {
            live.tick(now, false, |_, _| {});
        }
        let mut skipped = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.25, 5, 77);
        skipped.skip_ticks(300);
        assert_eq!(
            live.factory.next_id_preview(),
            skipped.factory.next_id_preview()
        );
        let drain = |s: &mut SyntheticSource| {
            let mut v = Vec::new();
            for now in 300..400 {
                s.tick(now, true, |n, p| v.push((now, n, p.id, p.dst)));
            }
            v
        };
        assert_eq!(drain(&mut live), drain(&mut skipped));
    }

    #[test]
    fn factory_skip_to_only_raises() {
        let mut f = PacketFactory::new();
        f.next_id_preview();
        f.skip_to(10);
        assert_eq!(f.next_id(), PacketId(10));
        f.skip_to(5); // no-op: already past
        assert_eq!(f.next_id(), PacketId(11));
    }

    #[test]
    fn ids_are_unique() {
        let mesh = Mesh::square(4);
        let mut src = SyntheticSource::new(mesh, TrafficPattern::Transpose, 1.0, 5, 7);
        let mut ids = std::collections::HashSet::new();
        for now in 0..100 {
            src.tick(now, true, |_, p| {
                assert!(ids.insert(p.id), "duplicate packet id");
            });
        }
        assert!(!ids.is_empty());
    }

    #[test]
    fn measured_flag_propagates() {
        let mesh = Mesh::square(4);
        let mut src = SyntheticSource::new(mesh, TrafficPattern::BitComplement, 1.0, 5, 7);
        src.tick(0, false, |_, p| assert!(!p.measured));
        src.tick(1, true, |_, p| assert!(p.measured));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mesh = Mesh::square(5);
        let run = |seed| {
            let mut s = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.3, 5, seed);
            let mut v = Vec::new();
            for now in 0..200 {
                s.tick(now, true, |n, p| v.push((now, n, p.dst)));
            }
            v
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
