//! Synthetic spatial traffic patterns (§IV).

use noc_sim::{Coord, Mesh, NodeId};
use rand::{Rng, RngExt};

/// A spatial traffic pattern mapping each source to destinations.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficPattern {
    /// Destinations drawn uniformly at random (excluding the source).
    UniformRandom,
    /// Messages from `(x, y)` go to `(x + k/2 - 1 mod k, y)` — adversarial
    /// for dimension-order routing on a mesh.
    Tornado,
    /// Messages from `(x, y)` go to `(y, x)`; requires a square mesh.
    Transpose,
    /// Messages from `(x, y)` go to the bit-complement node
    /// `(k-1-x, k-1-y)`.
    BitComplement,
    /// All sources send to the listed hotspot nodes, chosen round-robin by
    /// the source id (models many-to-few accelerator→memory traffic).
    Hotspot(Vec<NodeId>),
    /// Bit-reverse permutation of the node index (power-of-two meshes).
    BitReverse,
    /// Perfect shuffle: rotate the node-index bits left by one
    /// (power-of-two meshes).
    Shuffle,
    /// Nearest neighbour: each node sends to its east neighbour (wrapping
    /// by row) — the friendliest possible pattern, a useful lower bound.
    Neighbor,
}

impl TrafficPattern {
    /// Name used in experiment output (matches the paper's abbreviations).
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "UR",
            TrafficPattern::Tornado => "TOR",
            TrafficPattern::Transpose => "TR",
            TrafficPattern::BitComplement => "BC",
            TrafficPattern::Hotspot(_) => "HS",
            TrafficPattern::BitReverse => "BR",
            TrafficPattern::Shuffle => "SH",
            TrafficPattern::Neighbor => "NB",
        }
    }

    /// Destination for a packet from `src`. Returns `None` when the pattern
    /// maps the source onto itself (such sources inject no traffic, as in
    /// standard synthetic methodology).
    pub fn dest<R: Rng + ?Sized>(&self, mesh: &Mesh, src: NodeId, rng: &mut R) -> Option<NodeId> {
        let c = mesh.coord(src);
        let (kx, ky) = (mesh.kx(), mesh.ky());
        let d = match self {
            TrafficPattern::UniformRandom => {
                let n = mesh.len() as u32;
                // Draw uniformly among the n-1 other nodes.
                let mut t = rng.random_range(0..n - 1);
                if t >= src.0 {
                    t += 1;
                }
                return Some(NodeId(t));
            }
            TrafficPattern::Tornado => {
                // (x + ⌈k/2⌉ - 1, y): GOAL's tornado definition, §IV.
                let shift = (kx / 2).max(1) as u32 - 1 + u32::from(kx % 2 == 1);
                if shift == 0 {
                    return None;
                }
                Coord::new(((c.x as u32 + shift) % kx as u32) as u16, c.y)
            }
            TrafficPattern::Transpose => {
                assert_eq!(kx, ky, "transpose requires a square mesh");
                Coord::new(c.y, c.x)
            }
            TrafficPattern::BitComplement => Coord::new(kx - 1 - c.x, ky - 1 - c.y),
            TrafficPattern::Hotspot(spots) => {
                assert!(!spots.is_empty(), "hotspot pattern needs targets");
                let t = spots[src.index() % spots.len()];
                return if t == src { None } else { Some(t) };
            }
            TrafficPattern::BitReverse => {
                let n = mesh.len() as u32;
                assert!(
                    n.is_power_of_two(),
                    "bit-reverse needs a power-of-two node count"
                );
                let bits = n.trailing_zeros();
                let t = src.0.reverse_bits() >> (32 - bits);
                return if t == src.0 { None } else { Some(NodeId(t)) };
            }
            TrafficPattern::Shuffle => {
                let n = mesh.len() as u32;
                assert!(
                    n.is_power_of_two(),
                    "shuffle needs a power-of-two node count"
                );
                let bits = n.trailing_zeros();
                let t = ((src.0 << 1) | (src.0 >> (bits - 1))) & (n - 1);
                return if t == src.0 { None } else { Some(NodeId(t)) };
            }
            TrafficPattern::Neighbor => Coord::new((c.x + 1) % kx, c.y),
        };
        let dst = mesh.id(d);
        if dst == src {
            None
        } else {
            Some(dst)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mesh() -> Mesh {
        Mesh::square(6)
    }

    #[test]
    fn uniform_random_never_self_and_covers() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(1);
        let src = NodeId(17);
        let mut seen = vec![false; m.len()];
        for _ in 0..5000 {
            let d = TrafficPattern::UniformRandom
                .dest(&m, src, &mut rng)
                .unwrap();
            assert_ne!(d, src);
            seen[d.index()] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert_eq!(covered, m.len() - 1, "UR must reach every other node");
    }

    #[test]
    fn tornado_is_deterministic_row_shift() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(2);
        // k=6: shift = k/2 - 1 = 2.
        let src = m.id(Coord::new(1, 3));
        let d = TrafficPattern::Tornado.dest(&m, src, &mut rng).unwrap();
        assert_eq!(m.coord(d), Coord::new(3, 3));
        // Wrap-around.
        let src = m.id(Coord::new(5, 0));
        let d = TrafficPattern::Tornado.dest(&m, src, &mut rng).unwrap();
        assert_eq!(m.coord(d), Coord::new(1, 0));
    }

    #[test]
    fn transpose_mirrors_coordinates() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(3);
        let src = m.id(Coord::new(2, 5));
        let d = TrafficPattern::Transpose.dest(&m, src, &mut rng).unwrap();
        assert_eq!(m.coord(d), Coord::new(5, 2));
        // Diagonal nodes map to themselves → no traffic.
        let diag = m.id(Coord::new(3, 3));
        assert_eq!(TrafficPattern::Transpose.dest(&m, diag, &mut rng), None);
    }

    #[test]
    fn bit_complement_is_involution() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(4);
        for src in m.nodes() {
            if let Some(d) = TrafficPattern::BitComplement.dest(&m, src, &mut rng) {
                let back = TrafficPattern::BitComplement.dest(&m, d, &mut rng).unwrap();
                assert_eq!(back, src);
            }
        }
    }

    #[test]
    fn bit_reverse_and_shuffle_are_permutations() {
        let m = Mesh::square(4); // 16 nodes, power of two
        let mut rng = StdRng::seed_from_u64(8);
        for p in [TrafficPattern::BitReverse, TrafficPattern::Shuffle] {
            let mut seen = std::collections::HashSet::new();
            for src in m.nodes() {
                match p.dest(&m, src, &mut rng) {
                    Some(d) => {
                        assert!(seen.insert(d), "{}: duplicate target {d:?}", p.name());
                    }
                    None => {
                        // Fixed point maps to itself: count it too.
                        assert!(seen.insert(src));
                    }
                }
            }
            assert_eq!(seen.len(), m.len(), "{} must be a permutation", p.name());
        }
    }

    #[test]
    fn neighbor_is_one_hop_with_row_wrap() {
        let m = Mesh::square(6);
        let mut rng = StdRng::seed_from_u64(9);
        for src in m.nodes() {
            let d = TrafficPattern::Neighbor.dest(&m, src, &mut rng).unwrap();
            let (cs, cd) = (m.coord(src), m.coord(d));
            assert_eq!(cs.y, cd.y);
            assert_eq!(cd.x, (cs.x + 1) % 6);
        }
    }

    #[test]
    fn hotspot_targets_are_stable() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(5);
        let spots = vec![NodeId(0), NodeId(35)];
        let p = TrafficPattern::Hotspot(spots);
        let a = p.dest(&m, NodeId(2), &mut rng).unwrap();
        let b = p.dest(&m, NodeId(2), &mut rng).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, NodeId(0));
        assert_eq!(p.dest(&m, NodeId(3), &mut rng), Some(NodeId(35)));
        // A hotspot node addressed to itself injects nothing.
        assert_eq!(p.dest(&m, NodeId(0), &mut rng), None);
    }
}
