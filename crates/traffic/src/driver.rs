//! Open-loop measurement driver: warm-up → measure → drain, following the
//! paper's methodology (§IV-A: "the network is warmed up with 1000 packets
//! and simulated for 100,000 packets").

use noc_sim::{Network, NodeModel};

use crate::source::SyntheticSource;

/// Phase lengths for one open-loop run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseConfig {
    /// Warm-up: inject unmeasured traffic for this many cycles *and* at
    /// least `warmup_packets` packets.
    pub warmup_cycles: u64,
    pub warmup_packets: u64,
    /// Measurement window: inject measured traffic until this many cycles
    /// elapse or `measure_packets` packets have been offered.
    pub measure_cycles: u64,
    pub measure_packets: u64,
    /// After the window, keep injecting unmeasured traffic and wait up to
    /// this long for measured packets to drain out.
    pub drain_cycles: u64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            warmup_cycles: 2_000,
            warmup_packets: 1_000,
            measure_cycles: 30_000,
            measure_packets: 100_000,
            drain_cycles: 10_000,
        }
    }
}

impl PhaseConfig {
    /// A small configuration for unit tests.
    pub fn quick() -> Self {
        PhaseConfig {
            warmup_cycles: 500,
            warmup_packets: 50,
            measure_cycles: 3_000,
            measure_packets: 10_000,
            drain_cycles: 3_000,
        }
    }
}

/// Result of one open-loop run.
#[derive(Clone, Debug, serde::Serialize)]
pub struct RunResult {
    /// Offered load (flits/node/cycle).
    pub offered: f64,
    /// Average measured packet latency (cycles).
    pub avg_latency: f64,
    /// Accepted throughput (flits/node/cycle) over the measurement window.
    pub throughput: f64,
    /// Fraction of measured packets that were delivered by the end of the
    /// drain phase; < 1.0 indicates the network saturated.
    pub delivered_fraction: f64,
    /// Whether the run is considered saturated (delivery < 95 % or latency
    /// above 10× the warm-up zero-load estimate).
    pub saturated: bool,
    /// Host wall-clock time for the whole run (warm-up + measure + drain).
    pub wall_seconds: f64,
    /// Simulated cycles per host second over the whole run — the simulator
    /// performance metric kernel speedups are judged by.
    pub sim_cycles_per_sec: f64,
    /// Full network statistics for the measurement window.
    pub stats: noc_sim::NetStats,
}

/// Drives a network with a synthetic source through the three phases.
pub struct OpenLoop {
    pub source: SyntheticSource,
    pub phases: PhaseConfig,
}

impl OpenLoop {
    pub fn new(source: SyntheticSource, phases: PhaseConfig) -> Self {
        OpenLoop { source, phases }
    }

    /// Run the experiment on `net` (which must match the source's mesh).
    pub fn run<N: NodeModel>(&mut self, net: &mut Network<N>) -> RunResult {
        let ph = self.phases;
        let nodes = net.mesh.len();
        let wall_start = std::time::Instant::now();
        let first_cycle = net.now();

        // Warm-up.
        let mut injected = 0u64;
        let start = net.now();
        while net.now() - start < ph.warmup_cycles || injected < ph.warmup_packets {
            let now = net.now();
            let mut pkts = Vec::new();
            self.source.tick(now, false, |n, p| pkts.push((n, p)));
            injected += pkts.len() as u64;
            for (n, p) in pkts {
                net.inject(n, p);
            }
            net.step();
            if net.now() - start > ph.warmup_cycles * 50 {
                break; // zero-rate guard
            }
        }

        // Measurement.
        net.begin_measurement();
        let mstart = net.now();
        let mut offered_packets = 0u64;
        while net.now() - mstart < ph.measure_cycles && offered_packets < ph.measure_packets {
            let now = net.now();
            let mut pkts = Vec::new();
            self.source.tick(now, true, |n, p| pkts.push((n, p)));
            offered_packets += pkts.len() as u64;
            for (n, p) in pkts {
                net.inject(n, p);
            }
            net.step();
        }

        // Accepted throughput is measured over the injection window only —
        // deliveries during the drain phase would otherwise inflate it past
        // the offered load at saturation.
        let dstart = net.now();
        let window_flits = net.stats.flits_delivered;
        let window_cycles = dstart - mstart;

        // Drain: keep background (unmeasured) traffic flowing so contention
        // stays realistic, and wait for measured packets to leave.
        while net.now() - dstart < ph.drain_cycles {
            if net.stats.packets_delivered >= net.stats.packets_offered {
                break;
            }
            let now = net.now();
            let mut pkts = Vec::new();
            self.source.tick(now, false, |n, p| pkts.push((n, p)));
            for (n, p) in pkts {
                net.inject(n, p);
            }
            net.step();
        }
        net.end_measurement();
        // Leakage/throughput accounting uses the injection window only.
        net.stats.measured_cycles = window_cycles;

        let stats = net.stats.clone();
        let delivered_fraction = if stats.packets_offered == 0 {
            1.0
        } else {
            stats.packets_delivered as f64 / stats.packets_offered as f64
        };
        let avg_latency = stats.avg_latency();
        let saturated = delivered_fraction < 0.95;
        let throughput = if window_cycles == 0 {
            0.0
        } else {
            window_flits as f64 / (window_cycles as f64 * nodes as f64)
        };
        let wall_seconds = wall_start.elapsed().as_secs_f64();
        let total_cycles = net.now() - first_cycle;
        RunResult {
            offered: self.source.rate(),
            avg_latency,
            throughput,
            delivered_fraction,
            saturated,
            wall_seconds,
            sim_cycles_per_sec: if wall_seconds > 0.0 {
                total_cycles as f64 / wall_seconds
            } else {
                0.0
            },
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TrafficPattern;
    use noc_sim::{Mesh, Network, NetworkConfig, PacketNode};

    fn run_at(rate: f64) -> RunResult {
        let cfg = NetworkConfig::with_mesh(Mesh::square(4));
        let mut net = Network::new(cfg.mesh, |id| PacketNode::new(id, &cfg, None));
        let source = SyntheticSource::new(cfg.mesh, TrafficPattern::UniformRandom, rate, 5, 11);
        let mut driver = OpenLoop::new(source, PhaseConfig::quick());
        driver.run(&mut net)
    }

    #[test]
    fn low_load_is_unsaturated_with_low_latency() {
        let r = run_at(0.05);
        assert!(!r.saturated, "5% load must not saturate");
        assert!(r.delivered_fraction > 0.99);
        assert!(r.avg_latency < 40.0, "latency {} too high", r.avg_latency);
        // Accepted ≈ offered at low load.
        assert!((r.throughput - 0.05).abs() < 0.015, "throughput {}", r.throughput);
    }

    #[test]
    fn latency_rises_with_load() {
        let lo = run_at(0.05);
        let hi = run_at(0.30);
        assert!(
            hi.avg_latency > lo.avg_latency,
            "latency must increase with load ({} vs {})",
            lo.avg_latency,
            hi.avg_latency
        );
    }

    #[test]
    fn overload_saturates() {
        let r = run_at(2.0); // far beyond capacity
        assert!(r.saturated);
        assert!(r.throughput < 1.0);
    }
}
