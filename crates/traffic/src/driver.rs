//! Open-loop measurement driver: warm-up → measure → drain, following the
//! paper's methodology (§IV-A: "the network is warmed up with 1000 packets
//! and simulated for 100,000 packets").
//!
//! The loop itself lives in [`crate::engine::run_phases`]; `OpenLoop` is
//! the synthetic-source façade over it.

use noc_sim::Fabric;

use crate::source::SyntheticSource;

/// Phase lengths for one open-loop run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct PhaseConfig {
    /// Warm-up: inject unmeasured traffic for this many cycles *and* at
    /// least `warmup_packets` packets.
    pub warmup_cycles: u64,
    pub warmup_packets: u64,
    /// Measurement window: inject measured traffic until this many cycles
    /// elapse or `measure_packets` packets have been offered.
    pub measure_cycles: u64,
    pub measure_packets: u64,
    /// After the window, keep injecting unmeasured traffic and wait up to
    /// this long for measured packets to drain out.
    pub drain_cycles: u64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            warmup_cycles: 2_000,
            warmup_packets: 1_000,
            measure_cycles: 30_000,
            measure_packets: 100_000,
            drain_cycles: 10_000,
        }
    }
}

impl PhaseConfig {
    /// A small configuration for unit tests.
    pub fn quick() -> Self {
        PhaseConfig {
            warmup_cycles: 500,
            warmup_packets: 50,
            measure_cycles: 3_000,
            measure_packets: 10_000,
            drain_cycles: 3_000,
        }
    }

    /// Pure cycle-count phases with no packet floors or caps — the §V
    /// realistic-workload methodology, where each phase runs for exactly
    /// the given number of cycles.
    pub fn pure_cycles(warmup: u64, measure: u64, drain: u64) -> Self {
        PhaseConfig {
            warmup_cycles: warmup,
            warmup_packets: 0,
            measure_cycles: measure,
            measure_packets: u64::MAX,
            drain_cycles: drain,
        }
    }
}

/// Result of one open-loop run.
#[derive(Clone, Debug, serde::Serialize)]
pub struct RunResult {
    /// Offered load (flits/node/cycle).
    pub offered: f64,
    /// Average measured packet latency (cycles).
    pub avg_latency: f64,
    /// Accepted throughput (flits/node/cycle) over the measurement window.
    pub throughput: f64,
    /// Fraction of measured packets that were delivered by the end of the
    /// drain phase; < 1.0 indicates the network saturated.
    pub delivered_fraction: f64,
    /// Whether the run is considered saturated (delivery < 95 % or latency
    /// above 10× the warm-up zero-load estimate).
    pub saturated: bool,
    /// Host wall-clock time for the whole run (warm-up + measure + drain).
    pub wall_seconds: f64,
    /// Simulated cycles per host second over the whole run — the simulator
    /// performance metric kernel speedups are judged by.
    pub sim_cycles_per_sec: f64,
    /// Full network statistics for the measurement window.
    pub stats: noc_sim::NetStats,
}

/// Drives a network with a synthetic source through the three phases.
pub struct OpenLoop {
    pub source: SyntheticSource,
    pub phases: PhaseConfig,
}

impl OpenLoop {
    pub fn new(source: SyntheticSource, phases: PhaseConfig) -> Self {
        OpenLoop { source, phases }
    }

    /// Run the experiment on `fabric` (which must match the source's mesh).
    ///
    /// Any switching backend works: pass `&mut Network<PacketNode>`, a
    /// `TdmNetwork`, an SDM network, or a `Box<dyn Fabric>`'s contents.
    pub fn run(&mut self, fabric: &mut dyn Fabric) -> RunResult {
        crate::engine::run_phases(fabric, &mut self.source, self.phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TrafficPattern;
    use noc_sim::{Mesh, Network, NetworkConfig, PacketNode};

    fn run_at(rate: f64) -> RunResult {
        let cfg = NetworkConfig::with_mesh(Mesh::square(4));
        let mut net = Network::new(cfg.mesh, |id| PacketNode::new(id, &cfg, None));
        let source = SyntheticSource::new(cfg.mesh, TrafficPattern::UniformRandom, rate, 5, 11);
        let mut driver = OpenLoop::new(source, PhaseConfig::quick());
        driver.run(&mut net)
    }

    #[test]
    fn low_load_is_unsaturated_with_low_latency() {
        let r = run_at(0.05);
        assert!(!r.saturated, "5% load must not saturate");
        assert!(r.delivered_fraction > 0.99);
        assert!(r.avg_latency < 40.0, "latency {} too high", r.avg_latency);
        // Accepted ≈ offered at low load.
        assert!(
            (r.throughput - 0.05).abs() < 0.015,
            "throughput {}",
            r.throughput
        );
    }

    #[test]
    fn latency_rises_with_load() {
        let lo = run_at(0.05);
        let hi = run_at(0.30);
        assert!(
            hi.avg_latency > lo.avg_latency,
            "latency must increase with load ({} vs {})",
            lo.avg_latency,
            hi.avg_latency
        );
    }

    #[test]
    fn overload_saturates() {
        let r = run_at(2.0); // far beyond capacity
        assert!(r.saturated);
        assert!(r.throughput < 1.0);
    }
}
