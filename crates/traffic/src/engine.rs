//! The generic experiment engine: one warm-up → measure → drain loop over
//! any [`Fabric`] and any [`Workload`].
//!
//! This is the single run loop behind every driver in the workspace: the
//! synthetic open-loop driver ([`crate::OpenLoop`]), the heterogeneous
//! per-mix runner (`noc-hetero`), and the scenario runner
//! (`noc-scenario`). It follows the paper's methodology (§IV-A: "the
//! network is warmed up with 1000 packets and simulated for 100,000
//! packets"; §V phases are pure cycle counts — express those by setting
//! `warmup_packets = 0` and `measure_packets = u64::MAX`).
//!
//! The fabric is touched through exactly one virtual call per cycle
//! ([`Fabric::step`]), so the engine adds no per-node or per-flit dynamic
//! dispatch on top of the allocation-free cycle kernel.

use noc_sim::{Cycle, Fabric, NodeId, Packet};

use crate::driver::{PhaseConfig, RunResult};

/// A packet generator driving an experiment: synthetic Bernoulli sources,
/// the heterogeneous CPU+GPU workload model, trace replayers, …
pub trait Workload {
    /// Generate this cycle's new packets into `sink`; `measured` marks
    /// whether they belong to the measurement window.
    fn tick(&mut self, now: Cycle, measured: bool, sink: &mut dyn FnMut(NodeId, Packet));

    /// Offered load in flits/node/cycle, when the workload has a meaningful
    /// single number (synthetic sources); `0.0` otherwise.
    fn offered_load(&self) -> f64 {
        0.0
    }
}

/// Per-cycle control hook for live runs: cooperative cancellation plus an
/// observation point a streaming harness (`noc-serve`) can use to publish
/// telemetry windows as they close. Called once per simulated cycle,
/// immediately after the fabric stepped; returning `false` cancels the
/// run (the `_ctl` engine entry points then return `None` without
/// touching the fabric further, leaving cleanup — typically a bounded
/// drain — to the caller).
///
/// The hook only observes: a control that always returns `true` leaves
/// the simulated results bit-identical to the plain entry points.
pub trait RunControl {
    fn on_cycle(&mut self, fabric: &mut dyn Fabric) -> bool;
}

/// The default control: never cancels, observes nothing.
pub struct FreeRun;

impl RunControl for FreeRun {
    fn on_cycle(&mut self, _fabric: &mut dyn Fabric) -> bool {
        true
    }
}

/// Run the three-phase experiment loop on `fabric` driven by `workload`:
/// [`run_warmup`] followed by [`run_measurement`]. Phase semantics are
/// identical to the pre-`Fabric` concrete drivers, which the
/// `fabric_equivalence` property tests pin.
pub fn run_phases(
    fabric: &mut dyn Fabric,
    workload: &mut dyn Workload,
    phases: PhaseConfig,
) -> RunResult {
    run_warmup(fabric, workload, phases);
    run_measurement(fabric, workload, phases)
}

/// [`run_phases`] with a [`RunControl`] hook; `None` when cancelled.
pub fn run_phases_ctl(
    fabric: &mut dyn Fabric,
    workload: &mut dyn Workload,
    phases: PhaseConfig,
    ctl: &mut dyn RunControl,
) -> Option<RunResult> {
    run_warmup_ctl(fabric, workload, phases, ctl)?;
    run_measurement_ctl(fabric, workload, phases, ctl)
}

/// Phase 1, **warm-up**: unmeasured traffic for at least `warmup_cycles`
/// cycles *and* `warmup_packets` packets (with a zero-rate guard).
///
/// Returns the number of workload ticks performed — the replay count a
/// checkpoint must record so a restored run can fast-forward its own
/// source with `SyntheticSource::skip_ticks` to the same RNG position.
pub fn run_warmup(
    fabric: &mut dyn Fabric,
    workload: &mut dyn Workload,
    phases: PhaseConfig,
) -> u64 {
    run_warmup_ctl(fabric, workload, phases, &mut FreeRun).expect("FreeRun never cancels")
}

/// [`run_warmup`] with a [`RunControl`] hook; `None` when cancelled.
pub fn run_warmup_ctl(
    fabric: &mut dyn Fabric,
    workload: &mut dyn Workload,
    phases: PhaseConfig,
    ctl: &mut dyn RunControl,
) -> Option<u64> {
    let ph = phases;
    let mut scratch: Vec<(NodeId, Packet)> = Vec::new();
    let mut ticks = 0u64;
    let mut injected = 0u64;
    let start = fabric.now();
    while fabric.now() - start < ph.warmup_cycles || injected < ph.warmup_packets {
        let now = fabric.now();
        scratch.clear();
        workload.tick(now, false, &mut |n, p| scratch.push((n, p)));
        ticks += 1;
        injected += scratch.len() as u64;
        for (n, p) in scratch.drain(..) {
            fabric.inject(n, p);
        }
        fabric.step();
        if !ctl.on_cycle(fabric) {
            return None;
        }
        if fabric.now() - start > ph.warmup_cycles * 50 {
            break; // zero-rate guard
        }
    }
    Some(ticks)
}

/// Phases 2–3, **measurement** and **drain**, on an already-warm fabric
/// (either fresh from [`run_warmup`] or restored from a checkpoint):
///
/// 2. **Measurement** — measured traffic until `measure_cycles` elapse or
///    `measure_packets` have been offered;
/// 3. **Drain** — unmeasured background traffic for up to `drain_cycles`,
///    stopping early once every offered packet has been delivered.
///
/// Accepted throughput and leakage accounting use the injection window
/// only (`stats.measured_cycles` is fixed up to it): deliveries during the
/// drain phase would otherwise inflate throughput past the offered load at
/// saturation.
pub fn run_measurement(
    fabric: &mut dyn Fabric,
    workload: &mut dyn Workload,
    phases: PhaseConfig,
) -> RunResult {
    run_measurement_ctl(fabric, workload, phases, &mut FreeRun).expect("FreeRun never cancels")
}

/// [`run_measurement`] with a [`RunControl`] hook; `None` when cancelled
/// (mid-measurement or mid-drain — either way the window is abandoned,
/// `end_measurement` is not called, and the fabric is left to the caller).
pub fn run_measurement_ctl(
    fabric: &mut dyn Fabric,
    workload: &mut dyn Workload,
    phases: PhaseConfig,
    ctl: &mut dyn RunControl,
) -> Option<RunResult> {
    let ph = phases;
    let nodes = fabric.mesh().len();
    let wall_start = std::time::Instant::now();
    let first_cycle = fabric.now();
    let mut scratch: Vec<(NodeId, Packet)> = Vec::new();

    // Measurement.
    fabric.begin_measurement();
    fabric.clear_delivered_log();
    let mstart = fabric.now();
    let mut offered_packets = 0u64;
    while fabric.now() - mstart < ph.measure_cycles && offered_packets < ph.measure_packets {
        let now = fabric.now();
        scratch.clear();
        workload.tick(now, true, &mut |n, p| scratch.push((n, p)));
        offered_packets += scratch.len() as u64;
        for (n, p) in scratch.drain(..) {
            fabric.inject(n, p);
        }
        fabric.step();
        if !ctl.on_cycle(fabric) {
            return None;
        }
    }

    // Accepted throughput is measured over the injection window only —
    // deliveries during the drain phase would otherwise inflate it past
    // the offered load at saturation.
    let dstart = fabric.now();
    let window_flits = fabric.stats().flits_delivered;
    let window_cycles = dstart - mstart;

    // Drain: keep background (unmeasured) traffic flowing so contention
    // stays realistic, and wait for measured packets to leave.
    while fabric.now() - dstart < ph.drain_cycles {
        if fabric.stats().packets_delivered >= fabric.stats().packets_offered {
            break;
        }
        let now = fabric.now();
        scratch.clear();
        workload.tick(now, false, &mut |n, p| scratch.push((n, p)));
        for (n, p) in scratch.drain(..) {
            fabric.inject(n, p);
        }
        fabric.step();
        if !ctl.on_cycle(fabric) {
            return None;
        }
    }
    fabric.end_measurement();
    // Leakage/throughput accounting uses the injection window only.
    fabric.stats_mut().measured_cycles = window_cycles;

    let stats = fabric.stats().clone();
    let delivered_fraction = if stats.packets_offered == 0 {
        1.0
    } else {
        stats.packets_delivered as f64 / stats.packets_offered as f64
    };
    let avg_latency = stats.avg_latency();
    let saturated = delivered_fraction < 0.95;
    let throughput = if window_cycles == 0 {
        0.0
    } else {
        window_flits as f64 / (window_cycles as f64 * nodes as f64)
    };
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let total_cycles = fabric.now() - first_cycle;
    Some(RunResult {
        offered: workload.offered_load(),
        avg_latency,
        throughput,
        delivered_fraction,
        saturated,
        wall_seconds,
        sim_cycles_per_sec: if wall_seconds > 0.0 {
            total_cycles as f64 / wall_seconds
        } else {
            0.0
        },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TrafficPattern;
    use crate::source::SyntheticSource;
    use noc_sim::{Mesh, Network, NetworkConfig, PacketNode};

    #[test]
    fn engine_runs_a_boxed_fabric() {
        let mesh = Mesh::square(4);
        let cfg = NetworkConfig::with_mesh(mesh);
        let mut fabric: Box<dyn Fabric> =
            Box::new(Network::new(mesh, |id| PacketNode::new(id, &cfg, None)));
        let mut src = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.05, 5, 11);
        let r = run_phases(fabric.as_mut(), &mut src, PhaseConfig::quick());
        assert!(!r.saturated);
        assert!(r.delivered_fraction > 0.99);
        assert!(
            (r.offered - 0.05).abs() < 1e-12,
            "offered load from workload"
        );
        assert!(r.stats.packets_delivered > 50);
    }

    #[test]
    fn warmup_then_measurement_equals_run_phases() {
        // The split seam must not change behaviour: composing the two
        // halves by hand gives the same simulated results as the one-shot
        // loop (only the host-timing fields may differ).
        let mesh = Mesh::square(4);
        let run = |split: bool| {
            let cfg = NetworkConfig::with_mesh(mesh);
            let mut net = Network::new(mesh, |id| PacketNode::new(id, &cfg, None));
            let mut src = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.08, 5, 21);
            if split {
                let ticks = run_warmup(&mut net, &mut src, PhaseConfig::quick());
                assert!(ticks >= PhaseConfig::quick().warmup_cycles);
                run_measurement(&mut net, &mut src, PhaseConfig::quick())
            } else {
                run_phases(&mut net, &mut src, PhaseConfig::quick())
            }
        };
        let (a, b) = (run(false), run(true));
        assert_eq!(a.stats.packets_delivered, b.stats.packets_delivered);
        assert_eq!(a.stats.latency_sum, b.stats.latency_sum);
        assert_eq!(a.stats.measured_cycles, b.stats.measured_cycles);
        assert_eq!(a.stats.events, b.stats.events);
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.throughput, b.throughput);
    }

    #[test]
    fn run_control_cancels_at_tick_granularity() {
        struct CancelAfter(u64, u64);
        impl RunControl for CancelAfter {
            fn on_cycle(&mut self, _fabric: &mut dyn Fabric) -> bool {
                self.1 += 1;
                self.1 < self.0
            }
        }
        let mesh = Mesh::square(4);
        let cfg = NetworkConfig::with_mesh(mesh);
        let mut net = Network::new(mesh, |id| PacketNode::new(id, &cfg, None));
        let mut src = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.05, 5, 11);
        let mut ctl = CancelAfter(40, 0);
        let r = run_phases_ctl(&mut net, &mut src, PhaseConfig::quick(), &mut ctl);
        assert!(r.is_none(), "cancelled runs return no result");
        assert_eq!(net.now(), 40, "the run stopped on the cancelling tick");
        // The fabric is still usable: the caller can drain it clean.
        assert!(net.drain(10_000));
        assert_eq!(net.arena().live(), 0, "no leaked config payloads");
    }

    #[test]
    fn free_run_control_matches_plain_entry_points() {
        let mesh = Mesh::square(4);
        let run = |ctl: bool| {
            let cfg = NetworkConfig::with_mesh(mesh);
            let mut net = Network::new(mesh, |id| PacketNode::new(id, &cfg, None));
            let mut src = SyntheticSource::new(mesh, TrafficPattern::Transpose, 0.08, 5, 7);
            if ctl {
                run_phases_ctl(&mut net, &mut src, PhaseConfig::quick(), &mut FreeRun).unwrap()
            } else {
                run_phases(&mut net, &mut src, PhaseConfig::quick())
            }
        };
        let (a, b) = (run(false), run(true));
        assert_eq!(a.stats.packets_delivered, b.stats.packets_delivered);
        assert_eq!(a.stats.latency_sum, b.stats.latency_sum);
        assert_eq!(a.stats.events, b.stats.events);
    }

    #[test]
    fn pure_cycle_phases_run_exact_windows() {
        // HeteroPhases-style configuration: no packet floors/caps.
        let mesh = Mesh::square(3);
        let cfg = NetworkConfig::with_mesh(mesh);
        let mut net = Network::new(mesh, |id| PacketNode::new(id, &cfg, None));
        let mut src = SyntheticSource::new(mesh, TrafficPattern::Transpose, 0.10, 5, 3);
        let ph = PhaseConfig {
            warmup_cycles: 200,
            warmup_packets: 0,
            measure_cycles: 1_000,
            measure_packets: u64::MAX,
            drain_cycles: 2_000,
        };
        let r = run_phases(&mut net, &mut src, ph);
        // The injection window is exactly `measure_cycles` long.
        assert_eq!(r.stats.measured_cycles, 1_000);
    }
}
