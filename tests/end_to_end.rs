//! Integration tests spanning the whole stack: synthetic drivers over the
//! packet, TDM and SDM networks, energy comparison, and conservation
//! invariants.

use tdm_hybrid_noc::prelude::*;

fn quick_phases() -> PhaseConfig {
    PhaseConfig {
        warmup_cycles: 500,
        warmup_packets: 100,
        measure_cycles: 4_000,
        measure_packets: 20_000,
        drain_cycles: 4_000,
    }
}

fn tdm_cfg(mesh: Mesh) -> TdmConfig {
    let mut cfg = TdmConfig::vc4(NetworkConfig::with_mesh(mesh));
    cfg.policy.setup_after_msgs = 3;
    cfg.policy.freq_window = 2_048;
    cfg
}

#[test]
fn all_networks_deliver_transpose_traffic() {
    let mesh = Mesh::square(5);
    let rate = 0.10;

    // Baseline.
    let net_cfg = NetworkConfig::with_mesh(mesh);
    let mut base = Network::new(mesh, |id| PacketNode::new(id, &net_cfg, None));
    let r_base = OpenLoop::new(
        SyntheticSource::new(mesh, TrafficPattern::Transpose, rate, 5, 1),
        quick_phases(),
    )
    .run(&mut base);
    assert!(!r_base.saturated);
    assert!(r_base.delivered_fraction > 0.99);

    // TDM hybrid.
    let mut tdm = TdmNetwork::new(tdm_cfg(mesh));
    let r_tdm = OpenLoop::new(
        SyntheticSource::new(mesh, TrafficPattern::Transpose, rate, 5, 1),
        quick_phases(),
    )
    .run(&mut tdm.net);
    assert!(r_tdm.delivered_fraction > 0.99, "TDM lost packets");
    assert!(
        r_tdm.stats.events.cs_flit_fraction() > 0.05,
        "transpose must use circuits, got {:.3}",
        r_tdm.stats.events.cs_flit_fraction()
    );

    // SDM hybrid.
    let sdm_cfg = SdmConfig {
        net: net_cfg,
        ..Default::default()
    };
    let mut sdm = Network::new(mesh, move |id| SdmNode::new(id, &sdm_cfg));
    let r_sdm = OpenLoop::new(
        SyntheticSource::new(mesh, TrafficPattern::Transpose, rate, 5, 1),
        quick_phases(),
    )
    .run(&mut sdm);
    assert!(r_sdm.delivered_fraction > 0.99, "SDM lost packets");
}

#[test]
fn tdm_saves_energy_on_local_traffic_at_moderate_load() {
    // Transpose at moderate load: a regular pattern the hybrid network
    // serves largely over circuits.
    let mesh = Mesh::square(6);
    let rate = 0.2;
    let net_cfg = NetworkConfig::with_mesh(mesh);

    let mut base = Network::new(mesh, |id| PacketNode::new(id, &net_cfg, None));
    let r_base = OpenLoop::new(
        SyntheticSource::new(mesh, TrafficPattern::Transpose, rate, 5, 2),
        quick_phases(),
    )
    .run(&mut base);

    let mut cfg = tdm_cfg(mesh);
    cfg.gating = Some(tdm_hybrid_noc::sim::GatingConfig::default());
    let mut tdm = TdmNetwork::new(cfg);
    let r_tdm = OpenLoop::new(
        SyntheticSource::new(mesh, TrafficPattern::Transpose, rate, 5, 2),
        quick_phases(),
    )
    .run(&mut tdm.net);

    let model = EnergyModel::default();
    let saving = model
        .evaluate_stats(&r_tdm.stats)
        .saving_vs(&model.evaluate_stats(&r_base.stats));
    assert!(saving > 0.0, "expected energy saving, got {:.3}", saving);
}

#[test]
fn flit_conservation_under_mixed_traffic() {
    // Every offered measured packet is eventually delivered exactly once.
    let mesh = Mesh::square(4);
    let mut net = TdmNetwork::new(tdm_cfg(mesh));
    let mut ids = std::collections::HashSet::new();
    net.net.collect_delivered = true;
    net.begin_measurement();
    let mut id = 0u64;
    for round in 0..200 {
        for src in mesh.nodes() {
            if (src.0 + round) % 3 == 0 {
                let dst = NodeId((src.0 * 7 + round + 1) % 16);
                if dst != src {
                    net.inject(src, Packet::data(PacketId(id), src, dst, 5, net.now()));
                    ids.insert(PacketId(id));
                    id += 1;
                }
            }
        }
        net.run(8);
    }
    assert!(net.drain(30_000), "must drain");
    net.end_measurement();
    assert_eq!(net.stats().packets_delivered as usize, ids.len());
    // No duplicates in the delivered log.
    let mut seen = std::collections::HashSet::new();
    for d in &net.net.delivered_log {
        assert!(seen.insert(d.id), "duplicate delivery of {:?}", d.id);
        assert!(ids.contains(&d.id), "phantom packet {:?}", d.id);
    }
}

#[test]
fn hetero_mix_runs_on_every_network_kind() {
    use tdm_hybrid_noc::hetero::{CPU_BENCHES, GPU_BENCHES};
    let phases = PhaseConfig::pure_cycles(800, 2_500, 2_000);
    for kind in BackendKind::HETERO {
        let r = run_mix(&CPU_BENCHES[3], &GPU_BENCHES[3], kind, phases, 5).expect("mix runs");
        assert!(
            r.stats.packets_delivered > 200,
            "{}: too few deliveries",
            kind.label()
        );
        assert!(r.cpu_latency.is_finite());
        assert!(r.breakdown.total_pj() > 0.0);
    }
}

#[test]
fn gating_keeps_network_functional_under_bursts() {
    let mesh = Mesh::square(4);
    let net_cfg = NetworkConfig::with_mesh(mesh);
    let mut net = Network::new(mesh, |id| {
        PacketNode::new(
            id,
            &net_cfg,
            Some(tdm_hybrid_noc::sim::GatingConfig::default()),
        )
    });
    net.begin_measurement();
    let mut id = 0;
    // Idle period (gates VCs down), then a burst, then idle, then a burst.
    for phase in 0..4 {
        if phase % 2 == 1 {
            for src in mesh.nodes() {
                for k in 0..4u32 {
                    let dst = NodeId((src.0 + 5 + k) % 16);
                    if dst != src {
                        net.inject(src, Packet::data(PacketId(id), src, dst, 5, net.now()));
                        id += 1;
                    }
                }
            }
        }
        net.run(1_500);
    }
    assert!(net.drain(10_000));
    net.end_measurement();
    assert_eq!(net.stats.packets_delivered, net.stats.packets_offered);
    let events = net.total_events();
    assert!(events.vc_gating_transitions > 0, "gating never engaged");
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mesh = Mesh::square(4);
        let mut net = TdmNetwork::new(tdm_cfg(mesh));
        let r = OpenLoop::new(
            SyntheticSource::new(mesh, TrafficPattern::UniformRandom, 0.12, 5, 99),
            quick_phases(),
        )
        .run(&mut net.net);
        (
            r.stats.packets_delivered,
            r.stats.latency_sum,
            r.stats.events.cs_flits_delivered,
            r.stats.events.buffer_writes,
        )
    };
    assert_eq!(run(), run(), "simulation must be deterministic");
}

#[test]
fn area_and_config_match_paper_tables() {
    let cfg = RouterConfig::default();
    let area = AreaModel::default();
    assert!((area.packet_router_mm2(&cfg) - 0.177).abs() < 0.002);
    assert!((area.hybrid_router_mm2(&cfg, 128, 8) - 0.188).abs() < 0.002);
    let f = Floorplan::figure7();
    assert_eq!(f.mesh.len(), 36);
}
