//! Equivalence pin for the `Fabric` refactor: for every backend, the
//! `dyn Fabric` engine (`build_fabric` + `run_phases`) must produce
//! results identical to the pre-refactor concrete driver — reproduced here
//! as a monomorphized copy of the old `OpenLoop::run` body over
//! `Network<M>` — on seeded quick runs. Host-timing fields
//! (`wall_seconds`, `sim_cycles_per_sec`) are excluded: they are the only
//! fields allowed to differ.

use tdm_hybrid_noc::prelude::*;
use tdm_hybrid_noc::scenario::{slot_capacity_for, synthetic_sdm_config, synthetic_tdm_config};
use tdm_hybrid_noc::sdm::SdmNode;
use tdm_hybrid_noc::sim::{NodeModel, PacketNode};
use tdm_hybrid_noc::tdm::TdmNetwork;
use tdm_hybrid_noc::traffic::run_phases;

/// The old concrete open-loop driver body, verbatim but monomorphized over
/// the node model: inherent `Network<M>` calls only, no trait objects.
fn run_concrete<M: NodeModel>(
    net: &mut Network<M>,
    source: &mut SyntheticSource,
    ph: PhaseConfig,
) -> RunResult {
    let nodes = net.mesh.len();
    let wall_start = std::time::Instant::now();
    let first_cycle = net.now();
    let mut scratch: Vec<(NodeId, Packet)> = Vec::new();

    // Warm-up.
    let mut injected = 0u64;
    let start = net.now();
    while net.now() - start < ph.warmup_cycles || injected < ph.warmup_packets {
        let now = net.now();
        scratch.clear();
        source.tick(now, false, |n, p| scratch.push((n, p)));
        injected += scratch.len() as u64;
        for (n, p) in scratch.drain(..) {
            net.inject(n, p);
        }
        net.step();
        if net.now() - start > ph.warmup_cycles * 50 {
            break; // zero-rate guard
        }
    }

    // Measurement.
    net.begin_measurement();
    net.delivered_log.clear();
    let mstart = net.now();
    let mut offered_packets = 0u64;
    while net.now() - mstart < ph.measure_cycles && offered_packets < ph.measure_packets {
        let now = net.now();
        scratch.clear();
        source.tick(now, true, |n, p| scratch.push((n, p)));
        offered_packets += scratch.len() as u64;
        for (n, p) in scratch.drain(..) {
            net.inject(n, p);
        }
        net.step();
    }

    let dstart = net.now();
    let window_flits = net.stats.flits_delivered;
    let window_cycles = dstart - mstart;

    // Drain.
    while net.now() - dstart < ph.drain_cycles {
        if net.stats.packets_delivered >= net.stats.packets_offered {
            break;
        }
        let now = net.now();
        scratch.clear();
        source.tick(now, false, |n, p| scratch.push((n, p)));
        for (n, p) in scratch.drain(..) {
            net.inject(n, p);
        }
        net.step();
    }
    net.end_measurement();
    net.stats.measured_cycles = window_cycles;

    let stats = net.stats.clone();
    let delivered_fraction = if stats.packets_offered == 0 {
        1.0
    } else {
        stats.packets_delivered as f64 / stats.packets_offered as f64
    };
    let avg_latency = stats.avg_latency();
    let saturated = delivered_fraction < 0.95;
    let throughput = if window_cycles == 0 {
        0.0
    } else {
        window_flits as f64 / (window_cycles as f64 * nodes as f64)
    };
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let total_cycles = net.now() - first_cycle;
    RunResult {
        offered: source.rate(),
        avg_latency,
        throughput,
        delivered_fraction,
        saturated,
        wall_seconds,
        sim_cycles_per_sec: if wall_seconds > 0.0 {
            total_cycles as f64 / wall_seconds
        } else {
            0.0
        },
        stats,
    }
}

/// Bit-exact comparison of every deterministic `RunResult` field.
fn assert_identical(kind: BackendKind, dynamic: &RunResult, concrete: &RunResult) {
    let label = kind.label();
    assert_eq!(dynamic.offered, concrete.offered, "{label}: offered");
    assert_eq!(
        dynamic.avg_latency, concrete.avg_latency,
        "{label}: avg_latency"
    );
    assert_eq!(
        dynamic.throughput, concrete.throughput,
        "{label}: throughput"
    );
    assert_eq!(
        dynamic.delivered_fraction, concrete.delivered_fraction,
        "{label}: delivered_fraction"
    );
    assert_eq!(dynamic.saturated, concrete.saturated, "{label}: saturated");
    let (d, c) = (&dynamic.stats, &concrete.stats);
    assert_eq!(
        d.measured_cycles, c.measured_cycles,
        "{label}: measured_cycles"
    );
    assert_eq!(
        d.packets_offered, c.packets_offered,
        "{label}: packets_offered"
    );
    assert_eq!(
        d.packets_delivered, c.packets_delivered,
        "{label}: packets_delivered"
    );
    assert_eq!(d.latency_sum, c.latency_sum, "{label}: latency_sum");
    assert_eq!(d.latency_max, c.latency_max, "{label}: latency_max");
    assert_eq!(
        d.flits_delivered, c.flits_delivered,
        "{label}: flits_delivered"
    );
    assert_eq!(
        d.cs_packets_delivered, c.cs_packets_delivered,
        "{label}: cs_packets_delivered"
    );
    assert_eq!(
        d.config_packets_delivered, c.config_packets_delivered,
        "{label}: config_packets_delivered"
    );
    assert_eq!(d.latency_hist, c.latency_hist, "{label}: latency_hist");
    assert_eq!(d.events, c.events, "{label}: energy events");
    assert_eq!(d.leakage, c.leakage, "{label}: leakage integrals");
}

fn phases() -> PhaseConfig {
    PhaseConfig {
        warmup_cycles: 500,
        warmup_packets: 100,
        measure_cycles: 3_000,
        measure_packets: 15_000,
        drain_cycles: 3_000,
    }
}

fn source(mesh: Mesh, seed: u64) -> SyntheticSource {
    SyntheticSource::new(mesh, TrafficPattern::Transpose, 0.12, 5, seed)
}

/// Build the same concrete network the registry builds for `kind` and run
/// the old monomorphized driver on it.
fn concrete_run(kind: BackendKind, net_cfg: NetworkConfig, seed: u64) -> RunResult {
    let mut src = source(net_cfg.mesh, seed);
    match kind {
        BackendKind::PacketVc4 => {
            let mut net = Network::new(net_cfg.mesh, |id| PacketNode::new(id, &net_cfg, None));
            run_concrete(&mut net, &mut src, phases())
        }
        BackendKind::PacketVct => {
            let mut net = Network::new(net_cfg.mesh, |id| {
                PacketNode::new(
                    id,
                    &net_cfg,
                    Some(tdm_hybrid_noc::sim::GatingConfig::default()),
                )
            });
            run_concrete(&mut net, &mut src, phases())
        }
        BackendKind::HybridSdmVc4 => {
            let cfg = synthetic_sdm_config(net_cfg);
            let mut net = Network::new(net_cfg.mesh, move |id| SdmNode::new(id, &cfg));
            run_concrete(&mut net, &mut src, phases())
        }
        _ => {
            // The old synthetic driver ran the inner network directly —
            // no resize controller in the loop.
            let cfg = synthetic_tdm_config(kind, net_cfg, slot_capacity_for(net_cfg.mesh))
                .expect("TDM backend");
            let mut net = TdmNetwork::new(cfg);
            run_concrete(&mut net.net, &mut src, phases())
        }
    }
}

#[test]
fn dyn_fabric_engine_matches_concrete_driver_for_every_backend() {
    let net_cfg = NetworkConfig::with_mesh(Mesh::square(5));
    for kind in BackendKind::ALL {
        for seed in [7u64, 41] {
            let mut fabric = build_fabric(
                kind,
                net_cfg,
                Tuning::Synthetic {
                    slot_capacity: None,
                },
            )
            .expect("every backend builds");
            let mut src = source(net_cfg.mesh, seed);
            let dynamic = run_phases(fabric.as_mut(), &mut src, phases());
            let concrete = concrete_run(kind, net_cfg, seed);
            assert_identical(kind, &dynamic, &concrete);
        }
    }
}

#[test]
fn openloop_facade_matches_the_engine() {
    // `OpenLoop` is a thin façade over `run_phases`; pin that equivalence
    // too, through a boxed fabric.
    let net_cfg = NetworkConfig::with_mesh(Mesh::square(4));
    let kind = BackendKind::HybridTdmVc4;
    let mut a = build_fabric(
        kind,
        net_cfg,
        Tuning::Synthetic {
            slot_capacity: None,
        },
    )
    .unwrap();
    let mut b = build_fabric(
        kind,
        net_cfg,
        Tuning::Synthetic {
            slot_capacity: None,
        },
    )
    .unwrap();
    let r_engine = run_phases(a.as_mut(), &mut source(net_cfg.mesh, 13), phases());
    let r_facade = OpenLoop::new(source(net_cfg.mesh, 13), phases()).run(b.as_mut());
    assert_identical(kind, &r_engine, &r_facade);
}

#[test]
fn stepping_mode_does_not_change_results_through_the_fabric() {
    // The parallel cycle kernel is reached through the same single
    // `Fabric::step` call; thread count must not alter simulated results.
    let net_cfg = NetworkConfig::with_mesh(Mesh::square(5));
    for kind in [BackendKind::PacketVc4, BackendKind::HybridTdmVct] {
        let run_with = |threads: usize| {
            let mut cfg = net_cfg;
            cfg.step_threads = threads;
            let mut fabric = build_fabric(
                kind,
                cfg,
                Tuning::Synthetic {
                    slot_capacity: None,
                },
            )
            .unwrap();
            run_phases(fabric.as_mut(), &mut source(cfg.mesh, 29), phases())
        };
        let serial = run_with(1);
        let parallel = run_with(3);
        assert_identical(kind, &serial, &parallel);
    }
}
