//! Property-based tests over the core data structures and the full
//! network: invariants that must hold for *any* input sequence.

use proptest::prelude::*;
use tdm_hybrid_noc::prelude::*;
use tdm_hybrid_noc::sim::routing::{odd_even_directions, xy_route};
use tdm_hybrid_noc::sim::Port;
use tdm_hybrid_noc::tdm::SlotTables;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of reservations and releases keeps the slot tables
    /// consistent: no slot double-booked at one port, no output port
    /// promised to two inputs in the same slot, and released slots reusable.
    #[test]
    fn slot_tables_never_double_book(
        ops in prop::collection::vec(
            (0usize..5, 0u16..32, 1u8..6, 0usize..5, 0u64..8),
            1..60
        )
    ) {
        let mut t = SlotTables::new(32, 32, 1.0);
        let mut live: Vec<(Port, u64)> = Vec::new();
        for (in_p, slot, dur, out_p, path_seed) in ops {
            let in_port = Port::ALL[in_p];
            let out = Port::ALL[out_p];
            let path_id = path_seed + 100;
            if path_seed < 2 && !live.is_empty() {
                // Occasionally release a live path.
                let (p, id) = live.swap_remove(path_seed as usize % live.len());
                t.release_path(p, id);
                continue;
            }
            if t.try_reserve(in_port, slot, dur, out, path_id, NodeId(0)).is_ok() {
                live.push((in_port, path_id));
            }
        }
        // Invariant: in any slot, each output port appears at most once
        // across all input ports.
        for s in 0..32u64 {
            let mut outs = std::collections::HashSet::new();
            for p in Port::ALL {
                if let Some(e) = t.lookup(p, s) {
                    prop_assert!(outs.insert(e.out), "output {:?} double-promised in slot {s}", e.out);
                }
            }
        }
        // Releasing everything empties the tables.
        for (p, id) in live {
            t.release_path(p, id);
        }
        for s in 0..32u64 {
            for p in Port::ALL {
                prop_assert!(t.lookup(p, s).is_none());
            }
        }
    }

    /// X-Y and odd-even routes are minimal and reach the destination on
    /// arbitrary rectangular meshes.
    #[test]
    fn routes_are_minimal_on_any_mesh(
        kx in 2u16..9, ky in 2u16..9,
        src_i in 0u32..64, dst_i in 0u32..64,
    ) {
        let mesh = Mesh::new(kx, ky);
        let src = NodeId(src_i % mesh.len() as u32);
        let dst = NodeId(dst_i % mesh.len() as u32);

        // X-Y walk.
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            let p = xy_route(&mesh, cur, dst);
            let d = p.direction().expect("productive");
            cur = mesh.neighbor(cur, d).expect("in-mesh");
            hops += 1;
            prop_assert!(hops <= mesh.hops(src, dst));
        }
        prop_assert_eq!(hops, mesh.hops(src, dst));

        // Every odd-even choice is productive, and greedy walks terminate.
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            let dirs = odd_even_directions(&mesh, src, cur, dst);
            prop_assert!(!dirs.is_empty());
            // Worst-case choice each step.
            let d = *dirs.last().expect("non-empty");
            let next = mesh.neighbor(cur, d).expect("in-mesh");
            prop_assert_eq!(mesh.hops(next, dst) + 1, mesh.hops(cur, dst));
            cur = next;
            hops += 1;
        }
        prop_assert_eq!(hops, mesh.hops(src, dst));
    }

    /// The packet network delivers every offered packet exactly once and
    /// keeps latency ≥ the zero-load bound, for arbitrary traffic.
    #[test]
    fn packet_network_conserves_packets(
        seed in 0u64..1000,
        rate_milli in 20u64..150,
    ) {
        let mesh = Mesh::square(4);
        let net_cfg = NetworkConfig::with_mesh(mesh);
        let mut net = Network::new(mesh, |id| PacketNode::new(id, &net_cfg, None));
        let mut source = SyntheticSource::new(
            mesh,
            TrafficPattern::UniformRandom,
            rate_milli as f64 / 1000.0,
            5,
            seed,
        );
        net.begin_measurement();
        for _ in 0..600 {
            let now = net.now();
            let mut pkts = Vec::new();
            source.tick(now, true, |n, p| pkts.push((n, p)));
            for (n, p) in pkts {
                net.inject(n, p);
            }
            net.step();
        }
        prop_assert!(net.drain(20_000), "network failed to drain");
        net.end_measurement();
        prop_assert_eq!(net.stats.packets_delivered, net.stats.packets_offered);
        if net.stats.packets_delivered > 0 {
            // A packet needs at least head pipeline latency + serialisation.
            prop_assert!(net.stats.avg_latency() >= 8.0);
        }
    }

    /// The TDM hybrid network conserves packets under arbitrary traffic and
    /// never delivers a flit twice, circuits or not.
    #[test]
    fn tdm_network_conserves_packets(
        seed in 0u64..500,
        rate_milli in 20u64..120,
    ) {
        let mesh = Mesh::square(4);
        let mut cfg = TdmConfig::vc4(NetworkConfig::with_mesh(mesh));
        cfg.policy.setup_after_msgs = 2;
        cfg.policy.freq_window = 1_024;
        cfg.slot_capacity = 32;
        let mut net = TdmNetwork::new(cfg);
        let mut source = SyntheticSource::new(
            mesh,
            TrafficPattern::UniformRandom,
            rate_milli as f64 / 1000.0,
            5,
            seed,
        );
        net.begin_measurement();
        for _ in 0..800 {
            let now = net.now();
            let mut pkts = Vec::new();
            source.tick(now, true, |n, p| pkts.push((n, p)));
            for (n, p) in pkts {
                net.inject(n, p);
            }
            net.step();
        }
        prop_assert!(net.drain(30_000), "TDM network failed to drain");
        net.end_measurement();
        prop_assert_eq!(net.stats().packets_delivered, net.stats().packets_offered);
    }

    /// Serial and parallel node stepping are bit-identical: the same
    /// delivered-packet stream (ids, timestamps, switching modes, in the
    /// same order) and the same statistics, for arbitrary traffic — the
    /// determinism contract of the `Network::step` kernel.
    #[test]
    fn parallel_stepping_matches_serial(
        seed in 0u64..1000,
        rate_milli in 20u64..150,
        threads in 1usize..5,
    ) {
        let mesh = Mesh::square(4);
        let net_cfg = NetworkConfig::with_mesh(mesh);
        let run = |step_threads: usize| {
            let mut net = Network::new(mesh, |id| PacketNode::new(id, &net_cfg, None));
            net.set_step_threads(step_threads);
            net.collect_delivered = true;
            let mut source = SyntheticSource::new(
                mesh,
                TrafficPattern::UniformRandom,
                rate_milli as f64 / 1000.0,
                5,
                seed,
            );
            net.begin_measurement();
            for _ in 0..400 {
                let now = net.now();
                let mut pkts = Vec::new();
                source.tick(now, true, |n, p| pkts.push((n, p)));
                for (n, p) in pkts {
                    net.inject(n, p);
                }
                net.step();
            }
            let drained = net.drain(20_000);
            net.end_measurement();
            (drained, net.now(), net.delivered_log.clone(), net.stats.clone())
        };
        let (s_ok, s_now, s_log, s_stats) = run(0);
        let (p_ok, p_now, p_log, p_stats) = run(threads);
        prop_assert!(s_ok && p_ok, "both modes must drain");
        prop_assert_eq!(s_now, p_now);
        prop_assert_eq!(s_log, p_log);
        prop_assert_eq!(s_stats.packets_delivered, p_stats.packets_delivered);
        prop_assert_eq!(s_stats.latency_sum, p_stats.latency_sum);
        prop_assert_eq!(s_stats.flits_delivered, p_stats.flits_delivered);
        prop_assert_eq!(s_stats.events.buffer_writes, p_stats.events.buffer_writes);
        prop_assert_eq!(s_stats.events.xbar_traversals, p_stats.events.xbar_traversals);
        prop_assert_eq!(s_stats.leakage.buffer_slot_cycles, p_stats.leakage.buffer_slot_cycles);
    }

    /// Energy accounting: the breakdown is non-negative, additive, and
    /// saving_vs is antisymmetric around zero for identical inputs.
    #[test]
    fn energy_breakdown_is_consistent(
        writes in 0u64..1_000_000,
        reads in 0u64..1_000_000,
        xbar in 0u64..1_000_000,
        cycles in 1u64..1_000_000,
    ) {
        let events = tdm_hybrid_noc::sim::EnergyEvents {
            buffer_writes: writes,
            buffer_reads: reads,
            xbar_traversals: xbar,
            ..Default::default()
        };
        let leakage = tdm_hybrid_noc::sim::LeakageIntegrals {
            buffer_slot_cycles: cycles * 100,
            router_cycles: cycles,
            ..Default::default()
        };
        let b = EnergyModel::default().evaluate(&events, &leakage);
        prop_assert!(b.dynamic_pj() >= 0.0);
        prop_assert!(b.static_pj() > 0.0);
        prop_assert!((b.total_pj() - (b.dynamic_pj() + b.static_pj())).abs() < 1e-6);
        prop_assert!(b.saving_vs(&b).abs() < 1e-12);
    }
}
