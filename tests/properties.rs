//! Property-based tests over the core data structures and the full
//! network: invariants that must hold for *any* input sequence.

use proptest::prelude::*;
use tdm_hybrid_noc::prelude::*;
use tdm_hybrid_noc::sim::routing::{odd_even_directions, xy_route};
use tdm_hybrid_noc::sim::Port;
use tdm_hybrid_noc::tdm::SlotTables;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of reservations and releases keeps the slot tables
    /// consistent: no slot double-booked at one port, no output port
    /// promised to two inputs in the same slot, and released slots reusable.
    #[test]
    fn slot_tables_never_double_book(
        ops in prop::collection::vec(
            (0usize..5, 0u16..32, 1u8..6, 0usize..5, 0u64..8),
            1..60
        )
    ) {
        let mut t = SlotTables::new(32, 32, 1.0);
        let mut live: Vec<(Port, u64)> = Vec::new();
        for (in_p, slot, dur, out_p, path_seed) in ops {
            let in_port = Port::ALL[in_p];
            let out = Port::ALL[out_p];
            let path_id = path_seed + 100;
            if path_seed < 2 && !live.is_empty() {
                // Occasionally release a live path.
                let (p, id) = live.swap_remove(path_seed as usize % live.len());
                t.release_path(p, id);
                continue;
            }
            if t.try_reserve(in_port, slot, dur, out, path_id, NodeId(0)).is_ok() {
                live.push((in_port, path_id));
            }
        }
        // Invariant: in any slot, each output port appears at most once
        // across all input ports.
        for s in 0..32u64 {
            let mut outs = std::collections::HashSet::new();
            for p in Port::ALL {
                if let Some(e) = t.lookup(p, s) {
                    prop_assert!(outs.insert(e.out), "output {:?} double-promised in slot {s}", e.out);
                }
            }
        }
        // Releasing everything empties the tables.
        for (p, id) in live {
            t.release_path(p, id);
        }
        for s in 0..32u64 {
            for p in Port::ALL {
                prop_assert!(t.lookup(p, s).is_none());
            }
        }
    }

    /// X-Y and odd-even routes are minimal and reach the destination on
    /// arbitrary rectangular meshes.
    #[test]
    fn routes_are_minimal_on_any_mesh(
        kx in 2u16..9, ky in 2u16..9,
        src_i in 0u32..64, dst_i in 0u32..64,
    ) {
        let mesh = Mesh::new(kx, ky);
        let src = NodeId(src_i % mesh.len() as u32);
        let dst = NodeId(dst_i % mesh.len() as u32);

        // X-Y walk.
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            let p = xy_route(&mesh, cur, dst);
            let d = p.direction().expect("productive");
            cur = mesh.neighbor(cur, d).expect("in-mesh");
            hops += 1;
            prop_assert!(hops <= mesh.hops(src, dst));
        }
        prop_assert_eq!(hops, mesh.hops(src, dst));

        // Every odd-even choice is productive, and greedy walks terminate.
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            let dirs = odd_even_directions(&mesh, src, cur, dst);
            prop_assert!(!dirs.is_empty());
            // Worst-case choice each step.
            let d = dirs.last().expect("non-empty");
            let next = mesh.neighbor(cur, d).expect("in-mesh");
            prop_assert_eq!(mesh.hops(next, dst) + 1, mesh.hops(cur, dst));
            cur = next;
            hops += 1;
        }
        prop_assert_eq!(hops, mesh.hops(src, dst));
    }

    /// Neighbor links are symmetric on every topology shape: if `b` is
    /// `a`'s neighbor in direction `d`, then `a` is `b`'s neighbor in the
    /// opposite direction — including across torus wrap links — and the
    /// precomputed `TopoTables` agree with the coordinate arithmetic.
    #[test]
    fn neighbors_are_symmetric_on_any_topology(
        kx in 2u16..9, ky in 2u16..9, c in 1u8..5,
        kind_i in 0usize..3,
    ) {
        use tdm_hybrid_noc::sim::{Direction, TopoTables};
        let topo = match kind_i {
            0 => Mesh::new(kx, ky),
            1 => Mesh::torus(kx, ky),
            _ => Mesh::cmesh(kx, ky, c),
        };
        let tables = TopoTables::build(&topo);
        for a in topo.nodes() {
            for d in Direction::ALL {
                prop_assert_eq!(
                    tables.neighbor(a.0 as usize, d),
                    topo.neighbor(a, d).map(|n| n.0 as usize),
                    "tables disagree at {:?} {:?}", a, d
                );
                if let Some(b) = topo.neighbor(a, d) {
                    prop_assert_eq!(
                        topo.neighbor(b, d.opposite()), Some(a),
                        "asymmetric link {:?} -{:?}-> {:?}", a, d, b
                    );
                    // A wrap edge is a wrap edge from both ends.
                    prop_assert_eq!(
                        topo.wraps(a, d), topo.wraps(b, d.opposite()),
                        "dateline disagrees across {:?} -{:?}-> {:?}", a, d, b
                    );
                }
            }
        }
    }

    /// X-Y routes are minimal and reach the destination on any torus: the
    /// walk takes exactly `hops(src, dst)` steps, where `hops` uses the
    /// shorter way around each ring.
    #[test]
    fn torus_routes_are_minimal(
        kx in 2u16..9, ky in 2u16..9,
        src_i in 0u32..64, dst_i in 0u32..64,
    ) {
        let topo = Mesh::torus(kx, ky);
        let src = NodeId(src_i % topo.len() as u32);
        let dst = NodeId(dst_i % topo.len() as u32);
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            let p = xy_route(&topo, cur, dst);
            let d = p.direction().expect("productive");
            cur = topo.neighbor(cur, d).expect("torus has no edges");
            hops += 1;
            prop_assert!(hops <= topo.hops(src, dst));
        }
        prop_assert_eq!(hops, topo.hops(src, dst));
    }

    /// Torus dateline discipline: along any X-Y route, the VC class
    /// (0 before the wrap link of the current dimension, 1 after) never
    /// goes from 1 back to 0 within a dimension, and resets on the
    /// dimension switch — the invariant that makes the class-1 VCs a
    /// terminal resource class and the CDG acyclic (deadlock freedom).
    #[test]
    fn torus_dateline_class_is_monotonic_per_dimension(
        kx in 2u16..9, ky in 2u16..9,
        src_i in 0u32..64, dst_i in 0u32..64,
    ) {
        let topo = Mesh::torus(kx, ky);
        let src = NodeId(src_i % topo.len() as u32);
        let dst = NodeId(dst_i % topo.len() as u32);
        let mut cur = src;
        let mut class = 0u8;
        let mut dim = 2u8; // 0 = X, 1 = Y, 2 = not started
        let mut wraps_seen = 0u32;
        while cur != dst {
            let p = xy_route(&topo, cur, dst);
            let d = p.direction().expect("productive");
            let step_dim = match d {
                tdm_hybrid_noc::sim::Direction::East
                | tdm_hybrid_noc::sim::Direction::West => 0,
                _ => 1,
            };
            if step_dim != dim {
                // Dimension-order routing never returns to a finished
                // dimension, and the class resets with the new dimension.
                prop_assert!(dim == 2 || (dim == 0 && step_dim == 1));
                dim = step_dim;
                class = 0;
            }
            if topo.wraps(cur, d) {
                // A second wrap in the same dimension would demand a
                // class-1 -> class-1 wrap transition, re-entering the
                // terminal class — exactly the cycle the dateline breaks.
                prop_assert_eq!(class, 0, "route wrapped twice in one dimension");
                class = 1;
                wraps_seen += 1;
            }
            cur = topo.neighbor(cur, d).expect("torus has no edges");
        }
        // The shorter way around each ring crosses its dateline at most
        // once, so at most one wrap per dimension.
        prop_assert!(wraps_seen <= 2, "route crossed {} wrap links", wraps_seen);
    }

    /// Torus dateline routing is deadlock-free end to end: a packet
    /// network on a randomized torus shape drains every offered packet
    /// under uniform-random load, including loads that keep all wrap
    /// links busy.
    #[test]
    fn torus_packet_network_is_deadlock_free(
        kx in 2u16..6, ky in 2u16..6,
        seed in 0u64..500,
        rate_milli in 20u64..250,
    ) {
        let topo = Mesh::torus(kx, ky);
        let net_cfg = NetworkConfig::with_mesh(topo);
        let mut net = Network::new(topo, |id| PacketNode::new(id, &net_cfg, None));
        let mut source = SyntheticSource::new(
            topo,
            TrafficPattern::UniformRandom,
            rate_milli as f64 / 1000.0,
            5,
            seed,
        );
        net.begin_measurement();
        for _ in 0..400 {
            let now = net.now();
            let mut pkts = Vec::new();
            source.tick(now, true, |n, p| pkts.push((n, p)));
            for (n, p) in pkts {
                net.inject(n, p);
            }
            net.step();
        }
        prop_assert!(net.drain(30_000), "torus {}x{} deadlocked", kx, ky);
        net.end_measurement();
        prop_assert_eq!(net.stats.packets_delivered, net.stats.packets_offered);
    }

    /// The TDM hybrid backend drains on randomized torus and concentrated
    /// shapes too (circuit setup/teardown rides the same dateline VCs).
    #[test]
    fn tdm_network_drains_on_any_topology(
        kx in 2u16..5, ky in 2u16..5, c in 1u8..4,
        kind_i in 0usize..3,
        seed in 0u64..200,
    ) {
        let topo = match kind_i {
            0 => Mesh::new(kx, ky),
            1 => Mesh::torus(kx, ky),
            _ => Mesh::cmesh(kx, ky, c),
        };
        let mut cfg = TdmConfig::vc4(NetworkConfig::with_mesh(topo));
        cfg.policy.setup_after_msgs = 2;
        cfg.policy.freq_window = 1_024;
        cfg.slot_capacity = 32;
        let mut net = TdmNetwork::new(cfg);
        let mut source = SyntheticSource::new(
            topo,
            TrafficPattern::UniformRandom,
            0.08,
            5,
            seed,
        );
        net.begin_measurement();
        for _ in 0..500 {
            let now = net.now();
            let mut pkts = Vec::new();
            source.tick(now, true, |n, p| pkts.push((n, p)));
            for (n, p) in pkts {
                net.inject(n, p);
            }
            net.step();
        }
        prop_assert!(net.drain(30_000), "TDM {:?} {}x{} failed to drain", topo.kind(), kx, ky);
        net.end_measurement();
        prop_assert_eq!(net.stats().packets_delivered, net.stats().packets_offered);
    }

    /// The packet network delivers every offered packet exactly once and
    /// keeps latency ≥ the zero-load bound, for arbitrary traffic.
    #[test]
    fn packet_network_conserves_packets(
        seed in 0u64..1000,
        rate_milli in 20u64..150,
    ) {
        let mesh = Mesh::square(4);
        let net_cfg = NetworkConfig::with_mesh(mesh);
        let mut net = Network::new(mesh, |id| PacketNode::new(id, &net_cfg, None));
        let mut source = SyntheticSource::new(
            mesh,
            TrafficPattern::UniformRandom,
            rate_milli as f64 / 1000.0,
            5,
            seed,
        );
        net.begin_measurement();
        for _ in 0..600 {
            let now = net.now();
            let mut pkts = Vec::new();
            source.tick(now, true, |n, p| pkts.push((n, p)));
            for (n, p) in pkts {
                net.inject(n, p);
            }
            net.step();
        }
        prop_assert!(net.drain(20_000), "network failed to drain");
        net.end_measurement();
        prop_assert_eq!(net.stats.packets_delivered, net.stats.packets_offered);
        if net.stats.packets_delivered > 0 {
            // A packet needs at least head pipeline latency + serialisation.
            prop_assert!(net.stats.avg_latency() >= 8.0);
        }
    }

    /// The TDM hybrid network conserves packets under arbitrary traffic and
    /// never delivers a flit twice, circuits or not.
    #[test]
    fn tdm_network_conserves_packets(
        seed in 0u64..500,
        rate_milli in 20u64..120,
    ) {
        let mesh = Mesh::square(4);
        let mut cfg = TdmConfig::vc4(NetworkConfig::with_mesh(mesh));
        cfg.policy.setup_after_msgs = 2;
        cfg.policy.freq_window = 1_024;
        cfg.slot_capacity = 32;
        let mut net = TdmNetwork::new(cfg);
        let mut source = SyntheticSource::new(
            mesh,
            TrafficPattern::UniformRandom,
            rate_milli as f64 / 1000.0,
            5,
            seed,
        );
        net.begin_measurement();
        for _ in 0..800 {
            let now = net.now();
            let mut pkts = Vec::new();
            source.tick(now, true, |n, p| pkts.push((n, p)));
            for (n, p) in pkts {
                net.inject(n, p);
            }
            net.step();
        }
        prop_assert!(net.drain(30_000), "TDM network failed to drain");
        net.end_measurement();
        prop_assert_eq!(net.stats().packets_delivered, net.stats().packets_offered);
    }

    /// Serial and parallel node stepping are bit-identical: the same
    /// delivered-packet stream (ids, timestamps, switching modes, in the
    /// same order) and the same statistics, for arbitrary traffic — the
    /// determinism contract of the `Network::step` kernel.
    #[test]
    fn parallel_stepping_matches_serial(
        seed in 0u64..1000,
        rate_milli in 20u64..150,
        threads in 1usize..5,
        topo_i in 0usize..3,
    ) {
        let mesh = match topo_i {
            0 => Mesh::square(4),
            1 => Mesh::torus_square(4),
            _ => Mesh::cmesh(4, 4, 2),
        };
        let net_cfg = NetworkConfig::with_mesh(mesh);
        let run = |step_threads: usize| {
            let mut net = Network::new(mesh, |id| PacketNode::new(id, &net_cfg, None));
            net.set_step_threads(step_threads);
            net.collect_delivered = true;
            let mut source = SyntheticSource::new(
                mesh,
                TrafficPattern::UniformRandom,
                rate_milli as f64 / 1000.0,
                5,
                seed,
            );
            net.begin_measurement();
            for _ in 0..400 {
                let now = net.now();
                let mut pkts = Vec::new();
                source.tick(now, true, |n, p| pkts.push((n, p)));
                for (n, p) in pkts {
                    net.inject(n, p);
                }
                net.step();
            }
            let drained = net.drain(20_000);
            net.end_measurement();
            (drained, net.now(), net.delivered_log.clone(), net.stats.clone())
        };
        let (s_ok, s_now, s_log, s_stats) = run(0);
        let (p_ok, p_now, p_log, p_stats) = run(threads);
        prop_assert!(s_ok && p_ok, "both modes must drain");
        prop_assert_eq!(s_now, p_now);
        prop_assert_eq!(s_log, p_log);
        prop_assert_eq!(s_stats.packets_delivered, p_stats.packets_delivered);
        prop_assert_eq!(s_stats.latency_sum, p_stats.latency_sum);
        prop_assert_eq!(s_stats.flits_delivered, p_stats.flits_delivered);
        prop_assert_eq!(s_stats.events.buffer_writes, p_stats.events.buffer_writes);
        prop_assert_eq!(s_stats.events.xbar_traversals, p_stats.events.xbar_traversals);
        prop_assert_eq!(s_stats.leakage.buffer_slot_cycles, p_stats.leakage.buffer_slot_cycles);
    }

    /// Activity-driven stepping (idle routers asleep, slot-wheel and
    /// gating timers, neighbour wakes) is bit-identical to forced
    /// step-everything: the same delivered-packet stream and the same
    /// statistics, for every switching backend and traffic shape. Only
    /// the `nodes_stepped` activity counter may differ — it measures the
    /// scheduler itself.
    #[test]
    fn activity_scheduling_matches_always_step(
        seed in 0u64..500,
        rate_milli in 10u64..120,
        pattern_i in 0usize..3,
        backend_i in 0usize..4,
        topo_i in 0usize..3,
    ) {
        let mesh = match topo_i {
            0 => Mesh::square(4),
            1 => Mesh::torus_square(4),
            _ => Mesh::cmesh(4, 4, 2),
        };
        let pattern = match pattern_i {
            0 => TrafficPattern::UniformRandom,
            1 => TrafficPattern::Transpose,
            _ => TrafficPattern::Hotspot(vec![NodeId(5), NodeId(10)]),
        };
        let backend = match BackendKind::SYNTH[backend_i] {
            // VC gating is incompatible with torus dateline classes.
            BackendKind::HybridTdmVct if mesh.is_torus() => BackendKind::HybridTdmVc4,
            b => b,
        };
        let run = |always_step: bool| {
            let mut fabric = build_fabric(
                backend,
                NetworkConfig::with_mesh(mesh),
                Tuning::Synthetic { slot_capacity: None },
            )
            .expect("synthetic backends build");
            fabric.set_always_step(always_step);
            fabric.set_collect_delivered(true);
            let mut source = SyntheticSource::new(
                mesh,
                pattern.clone(),
                rate_milli as f64 / 1000.0,
                5,
                seed,
            );
            fabric.begin_measurement();
            for _ in 0..400 {
                let now = fabric.now();
                let mut pkts = Vec::new();
                source.tick(now, true, |n, p| pkts.push((n, p)));
                for (n, p) in pkts {
                    fabric.inject(n, p);
                }
                fabric.step();
            }
            let drained = fabric.drain(20_000);
            fabric.end_measurement();
            (drained, fabric.now(), fabric.delivered_log().to_vec(), fabric.stats().clone())
        };
        let (f_ok, f_now, f_log, f_stats) = run(true);
        let (a_ok, a_now, a_log, a_stats) = run(false);
        prop_assert!(f_ok && a_ok, "both modes must drain ({backend:?})");
        prop_assert_eq!(f_now, a_now);
        prop_assert_eq!(f_log, a_log);
        prop_assert_eq!(f_stats.measured_cycles, a_stats.measured_cycles);
        prop_assert_eq!(f_stats.packets_offered, a_stats.packets_offered);
        prop_assert_eq!(f_stats.packets_delivered, a_stats.packets_delivered);
        prop_assert_eq!(f_stats.latency_sum, a_stats.latency_sum);
        prop_assert_eq!(f_stats.latency_max, a_stats.latency_max);
        prop_assert_eq!(f_stats.flits_delivered, a_stats.flits_delivered);
        prop_assert_eq!(f_stats.cs_packets_delivered, a_stats.cs_packets_delivered);
        prop_assert_eq!(f_stats.config_packets_delivered, a_stats.config_packets_delivered);
        prop_assert_eq!(f_stats.latency_hist.clone(), a_stats.latency_hist.clone());
        prop_assert_eq!(f_stats.events, a_stats.events);
        prop_assert_eq!(f_stats.leakage, a_stats.leakage);
        // Forced mode steps everything; the scheduler must step no more.
        prop_assert_eq!(f_stats.nodes_stepped, f_stats.node_cycles);
        prop_assert!(a_stats.nodes_stepped <= a_stats.node_cycles);
    }

    /// Cycle-leaping (`Fabric::run_until` jumping over provably idle
    /// stretches) is bit-identical to per-cycle stepping — same delivered
    /// stream, statistics, energy events and leakage integrals — for every
    /// switching backend, traffic shape and sweep thread count. This is
    /// the invariant that lets the `--json` envelopes of every driver stay
    /// byte-identical whether a run is ticked or leapt.
    #[test]
    fn cycle_leaping_matches_per_cycle_stepping(
        seed in 0u64..500,
        rate_milli in 2u64..80,
        pattern_i in 0usize..3,
        backend_i in 0usize..4,
        threads in 2usize..5,
        topo_i in 0usize..3,
    ) {
        let mesh = match topo_i {
            0 => Mesh::square(4),
            1 => Mesh::torus_square(4),
            _ => Mesh::cmesh(4, 4, 2),
        };
        let pattern = match pattern_i {
            0 => TrafficPattern::UniformRandom,
            1 => TrafficPattern::Transpose,
            _ => TrafficPattern::Hotspot(vec![NodeId(5), NodeId(10)]),
        };
        let backend = match BackendKind::SYNTH[backend_i] {
            // VC gating is incompatible with torus dateline classes.
            BackendKind::HybridTdmVct if mesh.is_torus() => BackendKind::HybridTdmVc4,
            b => b,
        };
        // Pre-sample the injection schedule so both drives see the exact
        // same packets at the exact same cycles.
        let mut source = SyntheticSource::new(
            mesh,
            pattern.clone(),
            rate_milli as f64 / 1000.0,
            5,
            seed,
        );
        let horizon = 400u64;
        let mut sched: Vec<(u64, NodeId, Packet)> = Vec::new();
        for t in 0..horizon {
            source.tick(t, true, |n, p| sched.push((t, n, p)));
        }
        let run = |leap: bool, step_threads: usize| {
            let mut fabric = build_fabric(
                backend,
                NetworkConfig::with_mesh(mesh),
                Tuning::Synthetic { slot_capacity: None },
            )
            .expect("synthetic backends build");
            fabric.set_step_threads(step_threads);
            fabric.set_collect_delivered(true);
            fabric.begin_measurement();
            for (t, n, p) in &sched {
                if leap {
                    fabric.run_until(*t);
                } else {
                    while fabric.now() < *t {
                        fabric.step();
                    }
                }
                fabric.inject(*n, p.clone());
            }
            if leap {
                fabric.run_until(horizon);
            } else {
                while fabric.now() < horizon {
                    fabric.step();
                }
            }
            let drained = fabric.drain(20_000);
            fabric.end_measurement();
            (drained, fabric.now(), fabric.delivered_log().to_vec(), fabric.stats().clone())
        };
        let (t_ok, t_now, t_log, t_stats) = run(false, 0);
        let (l_ok, l_now, l_log, l_stats) = run(true, 0);
        let (p_ok, p_now, p_log, p_stats) = run(true, threads);
        prop_assert!(t_ok && l_ok && p_ok, "all modes must drain ({backend:?})");
        for (now, log, stats) in [(l_now, &l_log, &l_stats), (p_now, &p_log, &p_stats)] {
            prop_assert_eq!(t_now, now);
            prop_assert_eq!(&t_log, log);
            prop_assert_eq!(t_stats.measured_cycles, stats.measured_cycles);
            prop_assert_eq!(t_stats.packets_offered, stats.packets_offered);
            prop_assert_eq!(t_stats.packets_delivered, stats.packets_delivered);
            prop_assert_eq!(t_stats.latency_sum, stats.latency_sum);
            prop_assert_eq!(t_stats.latency_max, stats.latency_max);
            prop_assert_eq!(t_stats.flits_delivered, stats.flits_delivered);
            prop_assert_eq!(t_stats.cs_packets_delivered, stats.cs_packets_delivered);
            prop_assert_eq!(t_stats.config_packets_delivered, stats.config_packets_delivered);
            prop_assert_eq!(t_stats.latency_hist.clone(), stats.latency_hist.clone());
            prop_assert_eq!(t_stats.events, stats.events);
            prop_assert_eq!(t_stats.leakage, stats.leakage);
        }
    }

    /// Energy accounting: the breakdown is non-negative, additive, and
    /// saving_vs is antisymmetric around zero for identical inputs.
    #[test]
    fn energy_breakdown_is_consistent(
        writes in 0u64..1_000_000,
        reads in 0u64..1_000_000,
        xbar in 0u64..1_000_000,
        cycles in 1u64..1_000_000,
    ) {
        let events = tdm_hybrid_noc::sim::EnergyEvents {
            buffer_writes: writes,
            buffer_reads: reads,
            xbar_traversals: xbar,
            ..Default::default()
        };
        let leakage = tdm_hybrid_noc::sim::LeakageIntegrals {
            buffer_slot_cycles: cycles * 100,
            router_cycles: cycles,
            ..Default::default()
        };
        let b = EnergyModel::default().evaluate(&events, &leakage);
        prop_assert!(b.dynamic_pj() >= 0.0);
        prop_assert!(b.static_pj() > 0.0);
        prop_assert!((b.total_pj() - (b.dynamic_pj() + b.static_pj())).abs() < 1e-6);
        prop_assert!(b.saving_vs(&b).abs() < 1e-12);
    }
}

/// The resize controller's freeze/drain/re-setup sequence mutates nodes
/// from outside the step loop; the activity scheduler must survive it
/// bit-identically. This mirrors the table-exhaustion traffic of the
/// core resize test: one source hammering three destinations through
/// tiny slot tables forces at least one resize.
#[test]
fn activity_scheduling_survives_resize_bit_identically() {
    use tdm_hybrid_noc::tdm::ResizeConfig;
    let run = |always_step: bool| {
        let mut cfg = TdmConfig {
            net: NetworkConfig::with_mesh(Mesh::square(4)),
            slot_capacity: 64,
            ..TdmConfig::default()
        };
        cfg.resize = Some(ResizeConfig {
            initial_active: 8,
            fail_threshold: 4,
            window: 400,
            freeze_cycles: 120,
            shrink_below: 0.0,
        });
        let m = cfg.net.mesh;
        let flits = cfg.net.ps_packet_flits;
        let mut net = TdmNetwork::new(cfg);
        net.net.set_always_step(always_step);
        net.net.collect_delivered = true;
        net.begin_measurement();
        let src = m.id(Coord::new(0, 0));
        let dsts = [
            m.id(Coord::new(3, 0)),
            m.id(Coord::new(3, 1)),
            m.id(Coord::new(3, 2)),
        ];
        let mut id = 0;
        for _ in 0..200 {
            for &d in &dsts {
                let pkt = Packet::data(PacketId(id), src, d, flits, net.now());
                net.inject(src, pkt);
                id += 1;
            }
            net.run(12);
        }
        let drained = net.drain(20_000);
        net.end_measurement();
        assert!(net.resizes >= 1, "controller never resized");
        (
            drained,
            net.resizes,
            net.active_slots(),
            net.now(),
            net.net.delivered_log.clone(),
            net.stats().clone(),
        )
    };
    let (f_ok, f_resizes, f_slots, f_now, f_log, f_stats) = run(true);
    let (a_ok, a_resizes, a_slots, a_now, a_log, a_stats) = run(false);
    assert!(f_ok && a_ok, "both modes must drain across resizes");
    check_resize_runs_equal(
        (f_ok, f_resizes, f_slots, f_now, &f_log, &f_stats),
        (a_ok, a_resizes, a_slots, a_now, &a_log, &a_stats),
    );
}

/// Cycle-leaping through a dynamic slot-table resize sequence is
/// bit-identical to per-cycle stepping: `TdmNetwork::run_until` bounds
/// every leap at the next resize-controller decision point (observation
/// window end, freeze deadline), so the controller observes the network at
/// exactly the cycles where it could act. Same table-exhaustion traffic as
/// above — at least one grow happens mid-run.
#[test]
fn cycle_leaping_survives_resize_bit_identically() {
    use tdm_hybrid_noc::tdm::ResizeConfig;
    let run = |leap: bool| {
        let mut cfg = TdmConfig {
            net: NetworkConfig::with_mesh(Mesh::square(4)),
            slot_capacity: 64,
            ..TdmConfig::default()
        };
        cfg.resize = Some(ResizeConfig {
            initial_active: 8,
            fail_threshold: 4,
            window: 400,
            freeze_cycles: 120,
            shrink_below: 0.0,
        });
        let m = cfg.net.mesh;
        let flits = cfg.net.ps_packet_flits;
        let mut net = TdmNetwork::new(cfg);
        net.net.collect_delivered = true;
        net.begin_measurement();
        let src = m.id(Coord::new(0, 0));
        let dsts = [
            m.id(Coord::new(3, 0)),
            m.id(Coord::new(3, 1)),
            m.id(Coord::new(3, 2)),
        ];
        let mut id = 0;
        for _ in 0..200 {
            for &d in &dsts {
                let pkt = Packet::data(PacketId(id), src, d, flits, net.now());
                net.inject(src, pkt);
                id += 1;
            }
            if leap {
                let target = net.now() + 12;
                net.run_until(target);
            } else {
                for _ in 0..12 {
                    net.step();
                }
            }
        }
        let drained = net.drain(20_000);
        net.end_measurement();
        assert!(net.resizes >= 1, "controller never resized");
        (
            drained,
            net.resizes,
            net.active_slots(),
            net.now(),
            net.net.delivered_log.clone(),
            net.stats().clone(),
        )
    };
    let (f_ok, f_resizes, f_slots, f_now, f_log, f_stats) = run(false);
    let (a_ok, a_resizes, a_slots, a_now, a_log, a_stats) = run(true);
    assert!(f_ok && a_ok, "both modes must drain across resizes");
    check_resize_runs_equal(
        (f_ok, f_resizes, f_slots, f_now, &f_log, &f_stats),
        (a_ok, a_resizes, a_slots, a_now, &a_log, &a_stats),
    );
}

type ResizeRun<'a> = (
    bool,
    u32,
    u16,
    u64,
    &'a Vec<tdm_hybrid_noc::sim::DeliveredPacket>,
    &'a tdm_hybrid_noc::sim::NetStats,
);

fn check_resize_runs_equal(f: ResizeRun, a: ResizeRun) {
    let (_, f_resizes, f_slots, f_now, f_log, f_stats) = f;
    let (_, a_resizes, a_slots, a_now, a_log, a_stats) = a;
    assert_eq!(f_resizes, a_resizes);
    assert_eq!(f_slots, a_slots);
    assert_eq!(f_now, a_now);
    assert_eq!(f_log, a_log);
    assert_eq!(f_stats.packets_delivered, a_stats.packets_delivered);
    assert_eq!(f_stats.latency_sum, a_stats.latency_sum);
    assert_eq!(f_stats.cs_packets_delivered, a_stats.cs_packets_delivered);
    assert_eq!(
        f_stats.config_packets_delivered,
        a_stats.config_packets_delivered
    );
    assert_eq!(f_stats.latency_hist, a_stats.latency_hist);
    assert_eq!(f_stats.events, a_stats.events);
    assert_eq!(f_stats.leakage, a_stats.leakage);
}
