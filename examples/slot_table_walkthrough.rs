//! Figure 1, step by step: the slot-table state transitions of a single
//! hybrid router responding to three setup messages and a teardown.
//!
//! Run with: `cargo run --release --example slot_table_walkthrough`

use tdm_hybrid_noc::sim::{NodeId, Port};
use tdm_hybrid_noc::tdm::{ReserveError, SlotTables};

const IN_1: Port = Port::West;
const IN_2: Port = Port::South;
const OUT_3: Port = Port::North;
const OUT_4: Port = Port::East;

fn render(t: &SlotTables) -> String {
    let mut s = String::from("        in_1 (West)      in_2 (South)\n");
    for slot in 0..t.active() {
        let cell = |p: Port| match t.lookup(p, slot as u64) {
            Some(e) => format!("v=1 out={:?}", e.out),
            None => "v=0        ".into(),
        };
        s.push_str(&format!(
            "  s{slot}:  {:<14}  {:<14}\n",
            cell(IN_1),
            cell(IN_2)
        ));
    }
    s
}

fn main() {
    // Figure 1 uses 4-entry tables and shows two of the input ports.
    let mut t = SlotTables::new(4, 4, 1.0);
    let dst = NodeId(9);

    println!("Initially, no path is reserved; all entries are invalid:");
    println!("{}", render(&t));

    println!("setup1: in_1 → out_4, slot s3, duration 2 (succeeds; reservation");
    println!("is modulo S, so s3 and s0 are taken):");
    t.try_reserve(IN_1, 3, 2, OUT_4, 1, dst)
        .expect("setup1 succeeds");
    println!("{}", render(&t));

    println!("setup2: in_1 → out_3 at s3 — FAILS: the slot is already allocated:");
    let e = t.try_reserve(IN_1, 3, 1, OUT_3, 2, dst).unwrap_err();
    assert_eq!(e, ReserveError::SlotOccupied);
    println!("  -> {e:?}; tables unchanged, failure ack sent to the source\n");

    println!("setup3: in_2 → out_4 at s3 — FAILS: out_4 is reserved for in_1");
    println!("in that slot (output-port conflict):");
    let e = t.try_reserve(IN_2, 3, 1, OUT_4, 3, dst).unwrap_err();
    assert_eq!(e, ReserveError::OutputConflict);
    println!("  -> {e:?}; tables unchanged, failure ack sent to the source\n");

    println!("teardown for setup1's path: the valid bits reset and the slots");
    println!("become reusable:");
    let (out, n) = t.release_path(IN_1, 1).expect("path present");
    println!("  -> released {n} entries toward {out:?}");
    println!("{}", render(&t));

    println!("Both failed setups would now succeed:");
    t.try_reserve(IN_1, 3, 1, OUT_3, 2, dst)
        .expect("setup2 retry");
    t.try_reserve(IN_2, 0, 1, OUT_4, 3, dst)
        .expect("setup3 retry");
    println!("{}", render(&t));
}
