//! Quickstart: build a 36-node TDM hybrid-switched mesh (Table I
//! parameters), run uniform-random traffic against the packet-switched
//! baseline, and print latency, circuit usage and the energy comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use tdm_hybrid_noc::prelude::*;

fn main() {
    let mesh = Mesh::square(6);
    let net_cfg = NetworkConfig::with_mesh(mesh);
    let rate = 0.15; // flits/node/cycle
    let phases = PhaseConfig {
        warmup_cycles: 2_000,
        warmup_packets: 1_000,
        measure_cycles: 10_000,
        measure_packets: 50_000,
        drain_cycles: 5_000,
    };

    // --- baseline: canonical 4-VC packet-switched routers -----------------
    let mut base_net = Network::new(mesh, |id| PacketNode::new(id, &net_cfg, None));
    let source = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, rate, 5, 42);
    let base = OpenLoop::new(source, phases).run(&mut base_net);

    // --- the paper's network: TDM hybrid switching ------------------------
    let mut tdm_cfg = TdmConfig::vct(net_cfg); // hybrid + VC power gating
    tdm_cfg.policy.setup_after_msgs = 3;
    tdm_cfg.policy.freq_window = 2_048;
    let mut tdm_net = TdmNetwork::new(tdm_cfg);
    let source = SyntheticSource::new(mesh, TrafficPattern::UniformRandom, rate, 5, 42);
    let tdm = OpenLoop::new(source, phases).run(&mut tdm_net.net);

    let model = EnergyModel::default();
    let base_energy = model.evaluate_stats(&base.stats);
    let tdm_energy = model.evaluate_stats(&tdm.stats);

    println!("36-node mesh, uniform random @ {rate} flits/node/cycle\n");
    println!("                         Packet-VC4    Hybrid-TDM-VCt");
    println!(
        "avg packet latency     {:>8.1} cyc    {:>8.1} cyc",
        base.avg_latency, tdm.avg_latency
    );
    println!(
        "accepted throughput    {:>8.3}        {:>8.3}  (flits/node/cycle)",
        base.throughput, tdm.throughput
    );
    println!(
        "circuit-switched flits {:>7.1}%        {:>7.1}%",
        base.stats.events.cs_flit_fraction() * 100.0,
        tdm.stats.events.cs_flit_fraction() * 100.0
    );
    println!(
        "network energy         {:>8.2e}      {:>8.2e}  (pJ)",
        base_energy.total_pj(),
        tdm_energy.total_pj()
    );
    println!(
        "\nenergy saving vs baseline: {:+.1}%",
        tdm_energy.saving_vs(&base_energy) * 100.0
    );
    println!(
        "time-slot steals: {}, path setups: {} ({} failed)",
        tdm.stats.events.slots_stolen,
        tdm.stats.events.setup_attempts,
        tdm.stats.events.setup_failures
    );
}
