//! Protocol debugging with the flit-level trace: watch a circuit get
//! reserved hop by hop, carry traffic, and get torn down.
//!
//! Run with: `cargo run --release --example trace_debugging`

use tdm_hybrid_noc::prelude::*;
use tdm_hybrid_noc::sim::{NodeModel, TraceEvent};

fn main() {
    let mesh = Mesh::square(4);
    let mut cfg = TdmConfig::vc4(NetworkConfig::with_mesh(mesh));
    cfg.slot_capacity = 16;
    cfg.policy.setup_after_msgs = 3;
    cfg.policy.idle_teardown = 300;
    cfg.policy.max_connections = 1;
    let mut net = TdmNetwork::new(cfg);
    for node in &mut net.net.nodes {
        node.router.trace.enable();
    }

    let src = NodeId(4); // (0,1)
    let dst = NodeId(7); // (3,1)
    let mut id = 0;

    // Frequent traffic earns a circuit; a later burst to another
    // destination evicts it.
    for _ in 0..15 {
        let pkt = Packet::data(PacketId(id), src, dst, 5, net.now());
        id += 1;
        net.inject(src, pkt);
        net.run(25);
    }
    net.run(400); // idle past the eviction threshold
    let dst2 = NodeId(12); // (0,3)
    for _ in 0..15 {
        let pkt = Packet::data(PacketId(id), src, dst2, 5, net.now());
        id += 1;
        net.inject(src, pkt);
        net.run(25);
    }
    assert!(net.drain(5_000));

    println!("Reservation / release events along the row (source → dest):\n");
    for node in &net.net.nodes {
        let events: Vec<String> = node
            .router
            .trace
            .iter()
            .filter_map(|(t, e)| match e {
                TraceEvent::Reserved {
                    in_port,
                    slot,
                    duration,
                    path_id,
                    ..
                } => Some(format!(
                    "  [{t:>5}] RESERVE  in={in_port:?} slots {slot}..{} path {path_id:#x}",
                    slot + *duration as u16
                )),
                TraceEvent::Released {
                    in_port, path_id, ..
                } => Some(format!(
                    "  [{t:>5}] RELEASE  in={in_port:?} path {path_id:#x}"
                )),
                _ => None,
            })
            .collect();
        if !events.is_empty() {
            println!("node {:?}:", node.id());
            for e in &events {
                println!("{e}");
            }
        }
    }

    // Follow one circuit-switched packet end to end.
    let followed = net
        .net
        .nodes
        .iter()
        .flat_map(|n| n.router.trace.iter())
        .find_map(|(_, e)| match e {
            TraceEvent::Traversed {
                packet,
                circuit: true,
                ..
            } => Some(*packet),
            _ => None,
        });
    if let Some(pid) = followed {
        println!("\njourney of circuit-switched packet {pid:?} (head flit):");
        let mut hops: Vec<(u64, String)> = net
            .net
            .nodes
            .iter()
            .flat_map(|n| {
                n.router.trace.iter().filter_map(move |(t, e)| match e {
                    TraceEvent::Traversed {
                        at,
                        out,
                        packet,
                        seq: 0,
                        circuit: true,
                    } if *packet == pid => Some((*t, format!("  [{t:>5}] {at:?} → {out:?}"))),
                    _ => None,
                })
            })
            .collect();
        hops.sort();
        for (_, line) in &hops {
            println!("{line}");
        }
        println!("(one traversal every 2 cycles: 1 in the router + 1 on the link — §II-D)");
    }
}
