//! Circuit-switched path sharing (§III-A) in action: a many-to-one traffic
//! pattern where intermediate sources hitchhike on a through-circuit
//! instead of reserving their own paths.
//!
//! Nodes 0..4 on the top row of a 6×6 mesh all send to node 5 at the end
//! of the row: the circuit from node 0 passes through every other source,
//! so once it is up and confirmed, they can ride it.
//!
//! Run with: `cargo run --release --example path_sharing_demo`

use tdm_hybrid_noc::prelude::*;

fn run(sharing: SharingConfig) -> (f64, u64, u64, u64) {
    let mesh = Mesh::square(6);
    let mut cfg = TdmConfig::vc4(NetworkConfig::with_mesh(mesh));
    cfg.sharing = sharing;
    cfg.slot_capacity = 32; // small tables: sharing matters most here
    cfg.policy.setup_after_msgs = 3;
    let mut net = TdmNetwork::new(cfg);

    let dst = NodeId(5); // (5,0): every minimal route runs along the top row
    net.begin_measurement();
    let mut id = 0;

    // Phase 1: node 0 alone earns a circuit to node 5; its path runs
    // east along the top row, straight through the other sources.
    for _ in 0..40 {
        let pkt = Packet::data(PacketId(id), NodeId(0), dst, 5, net.now());
        id += 1;
        net.inject(NodeId(0), pkt);
        net.run(30);
    }

    // Phase 2: the owner goes quiet and the intermediate nodes start
    // sending to the same sink. The confirmed circuit sits in their DLTs
    // and is mostly idle, so (with sharing on) they ride it rather than
    // reserving their own paths. Had the owner kept the circuit busy, the
    // riders' 2-bit failure counters would saturate and they would request
    // dedicated paths instead (§III-A1) — try adding NodeId(0) back in.
    let sources = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
    for _round in 0..100 {
        for &s in &sources {
            let pkt = Packet::data(PacketId(id), s, dst, 5, net.now());
            id += 1;
            net.inject(s, pkt);
        }
        net.run(60);
    }
    assert!(net.drain(10_000), "network must drain");
    net.end_measurement();

    let ev = net.net.total_events();
    (
        net.stats().avg_latency(),
        net.stats().cs_packets_delivered,
        ev.hitchhike_rides,
        ev.setup_attempts,
    )
}

fn main() {
    println!("5 sources on one row → 1 sink, 32-entry slot tables\n");
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>8}",
        "sharing", "latency", "CS pkts", "hitchhikes", "setups"
    );
    for (label, sharing) in [
        ("disabled", SharingConfig::DISABLED),
        ("hitchhiker", SharingConfig::HITCHHIKER),
        ("hitchhiker+vicinity", SharingConfig::FULL),
    ] {
        let (lat, cs, rides, setups) = run(sharing);
        println!("{label:<22} {lat:>10.1} {cs:>10} {rides:>12} {setups:>8}");
    }
    println!("\nWith sharing enabled, intermediate sources ride the existing circuit");
    println!("(hitchhikes > 0) instead of issuing their own setups, so the same");
    println!("traffic is served with fewer reservations (§III-A).");
}
