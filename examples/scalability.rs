//! Scalability scenario (§IV-D): the same transpose workload on growing
//! meshes, comparing the hybrid network's throughput and energy to the
//! baseline. Larger networks get 256-entry slot tables, as in the paper.
//!
//! Run with: `cargo run --release --example scalability [--big]`
//! (`--big` adds the 16×16 mesh; it takes a few minutes.)

use tdm_hybrid_noc::prelude::*;

fn sat_goodput(mesh: Mesh, tdm: bool, rate: f64) -> (f64, f64, EnergyBreakdown) {
    let net_cfg = NetworkConfig::with_mesh(mesh);
    let phases = PhaseConfig {
        warmup_cycles: 2_000,
        warmup_packets: 1_000,
        measure_cycles: 8_000,
        measure_packets: 60_000,
        drain_cycles: 4_000,
    };
    let source = SyntheticSource::new(mesh, TrafficPattern::Transpose, rate, 5, 77);
    let mut driver = OpenLoop::new(source, phases);
    let (result, stats) = if tdm {
        let mut cfg = TdmConfig::vct(net_cfg);
        cfg.slot_capacity = if mesh.len() > 64 { 256 } else { 128 };
        cfg.policy.setup_after_msgs = 3;
        cfg.policy.freq_window = 2_048;
        let mut net = TdmNetwork::new(cfg);
        let r = driver.run(&mut net.net);
        let s = r.stats.clone();
        (r, s)
    } else {
        let mut net = Network::new(mesh, |id| PacketNode::new(id, &net_cfg, None));
        let r = driver.run(&mut net);
        let s = r.stats.clone();
        (r, s)
    };
    let goodput =
        stats.packets_delivered as f64 * 5.0 / (stats.measured_cycles as f64 * mesh.len() as f64);
    (
        goodput,
        result.avg_latency,
        EnergyModel::default().evaluate_stats(&stats),
    )
}

fn main() {
    let big = std::env::args().any(|a| a == "--big");
    let mut sizes = vec![6u16, 8];
    if big {
        sizes.push(16);
    }
    println!("transpose traffic, offered at 60% of each mesh's baseline capacity\n");
    println!(
        "{:>6} {:>14} {:>14} {:>16} {:>16}",
        "mesh", "base goodput", "TDM goodput", "TDM Δthroughput", "TDM Δenergy"
    );
    for k in sizes {
        let mesh = Mesh::square(k);
        // Probe a mid-load point scaled by mesh size (bisection shrinks
        // relative to node count as k grows).
        let rate = 1.2 / k as f64;
        let (gb, _, eb) = sat_goodput(mesh, false, rate);
        let (gt, _, et) = sat_goodput(mesh, true, rate);
        println!(
            "{:>4}x{:<2} {:>14.3} {:>14.3} {:>15.1}% {:>15.1}%",
            k,
            k,
            gb,
            gt,
            (gt / gb - 1.0) * 100.0,
            et.saving_vs(&eb) * 100.0
        );
    }
    println!("\n(§IV-D: for regular patterns the hybrid network keeps its advantage");
    println!("as the mesh grows; uniform-random benefits shrink because pair counts");
    println!("grow quadratically while the slot tables do not.)");
}
