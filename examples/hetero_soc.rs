//! A heterogeneous system-on-chip scenario (§V): the Figure-7 36-tile
//! floorplan running one CPU benchmark on the CPU tiles and one GPU kernel
//! across the accelerators, comparing the baseline packet network against
//! the fully-optimised hybrid network.
//!
//! Run with: `cargo run --release --example hetero_soc [GPU] [CPU]`
//! e.g. `cargo run --release --example hetero_soc BLACKSCHOLES SWIM`

use tdm_hybrid_noc::hetero::workload::{cpu_bench, gpu_bench};
use tdm_hybrid_noc::hetero::{mix_phases, run_mix, Floorplan, CPU_BENCHES, GPU_BENCHES};
use tdm_hybrid_noc::scenario::BackendKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gpu = args
        .get(1)
        .and_then(|n| gpu_bench(n))
        .unwrap_or(&GPU_BENCHES[0]);
    let cpu = args
        .get(2)
        .and_then(|n| cpu_bench(n))
        .unwrap_or(&CPU_BENCHES[0]);

    println!("Figure-7 floorplan (C=CPU, A=accelerator, L2=cache bank, M=memory ctrl):\n");
    println!("{}", Floorplan::figure7().render());
    println!("workload mix: {} (GPU) + {} (CPU)\n", gpu.name, cpu.name);

    let phases = mix_phases(false);
    let base = run_mix(cpu, gpu, BackendKind::PacketVc4, phases, 11).expect("mix runs");
    let hyb = run_mix(cpu, gpu, BackendKind::HybridTdmHopVct, phases, 11).expect("mix runs");

    println!("                          Packet-VC4    Hybrid-TDM-hop-VCt");
    println!(
        "CPU packet latency       {:>8.1} cyc   {:>8.1} cyc",
        base.cpu_latency, hyb.cpu_latency
    );
    println!(
        "GPU packet latency       {:>8.1} cyc   {:>8.1} cyc",
        base.gpu_latency, hyb.gpu_latency
    );
    println!(
        "GPU critical (PS) lat.   {:>8.1} cyc   {:>8.1} cyc",
        base.gpu_critical_latency, hyb.gpu_critical_latency
    );
    println!(
        "circuit-switched flits   {:>7.1}%       {:>7.1}%",
        base.cs_flit_fraction * 100.0,
        hyb.cs_flit_fraction * 100.0
    );
    println!(
        "network energy           {:>8.2e}     {:>8.2e}  (pJ)",
        base.breakdown.total_pj(),
        hyb.breakdown.total_pj()
    );
    println!(
        "\nnetwork energy saving: {:+.1}%  (paper range: up to 23.8%, avg 17.1%)",
        hyb.breakdown.saving_vs(&base.breakdown) * 100.0
    );
    println!(
        "dynamic: {:+.1}%   static: {:+.1}%",
        hyb.breakdown.dynamic_saving_vs(&base.breakdown) * 100.0,
        hyb.breakdown.static_saving_vs(&base.breakdown) * 100.0
    );
}
